//! The fleet's write-ahead batch journal: durable, segmented, CRC-framed.
//!
//! Checkpoints alone cannot make shard death self-healing — a
//! checkpoint is a *periodic* image, and every batch routed after it
//! lives only in shard memory. The journal closes that gap: the router
//! appends every validated, seq-stamped micro-batch here **before**
//! fan-out, so any shard's post-checkpoint history can be reconstructed
//! exactly (restricted to its keyspace, in router sequence order) by
//! replaying the journal on top of its last `<base>.shard<i>` image.
//! That replay is what [`FleetCore::failover_shard`]
//! (crate::router::FleetCore::failover_shard) and whole-fleet
//! crash-restart are built on.
//!
//! ## Format
//!
//! The journal is a directory of segment files named
//! `<first-batch, 20 decimal digits>.glpwal` so lexicographic order is
//! batch order. Each segment starts with a 16-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "GLPJ"
//! 4       4     version (le u32, currently 1)
//! 8       8     first fleet-batch index in this segment (le u64)
//! ```
//!
//! followed by framed records, one per fleet micro-batch:
//!
//! ```text
//! 4     payload length (le u32)
//! 4     CRC-32 (IEEE) of the payload — glp_fraud::checkpoint::crc32
//! 8     fleet batch index (le u64)
//! 4     watermark: global window end after this batch (le u32)
//! 4     transaction count (le u32)
//! 24×n  per transaction: seq (le u64), buyer, item, day, amount bits
//!       (le u32 each) — the checkpoint's 16-byte encoding plus the
//!       router's sequence stamp
//! ```
//!
//! ## Tolerance contract
//!
//! * **Torn tail.** A crash mid-append leaves a partial frame at the end
//!   of the *last* segment. Reading stops cleanly at the last intact
//!   record; [`FleetWal::open`] additionally truncates the file back to
//!   that boundary so later appends start from a clean edge. A crash
//!   mid-rotation leaves a partial *header*; such a last segment holds
//!   no records and is removed.
//! * **Deep corruption is loud.** A bad frame anywhere except the tail
//!   of the last segment — bit rot in a sealed segment, a mangled
//!   header, non-monotone batch indices — is a typed [`WalError`],
//!   never a silent partial replay (`tests` sweep every byte).
//! * **Atomic rotation.** When a segment exceeds the configured size the
//!   writer syncs it and starts a new file; records are never split
//!   across segments, so segment deletion ([`FleetWal::truncate_covered`],
//!   driven by checkpoints) is always record-aligned.

use glp_fraud::checkpoint::crc32;
use glp_fraud::Transaction;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"GLPJ";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 16;
/// Frame prefix: payload length + CRC.
const FRAME_PREFIX: usize = 8;
/// Fixed payload part: batch + watermark + count.
const PAYLOAD_FIXED: usize = 16;
/// Per-transaction payload bytes: seq + the checkpoint tx encoding.
const TX_LEN: usize = 24;
const SEGMENT_EXT: &str = "glpwal";

/// Typed journal failures. Everything the reader can encounter maps to
/// one of these — corruption never panics and never replays silently.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A sealed (non-final) segment ends mid-frame.
    Truncated,
    /// A segment does not start with the journal magic.
    BadMagic,
    /// A segment was written by an unknown format version.
    BadVersion(u32),
    /// A record's payload does not match its stored CRC (in a sealed
    /// segment; at the tail of the last segment this is a clean torn
    /// tail instead).
    BadChecksum {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the payload read back.
        actual: u32,
    },
    /// Batch indices regressed or repeated across records, or an append
    /// was attempted out of order.
    OutOfOrder(&'static str),
    /// A structurally inconsistent record or segment (self-describing
    /// lengths disagree, header disagrees with first record, ...).
    Corrupt(&'static str),
    /// Replay needs batches the journal no longer (or never) covers:
    /// the first relevant record on disk starts after the batch the
    /// rebuild needs next.
    Gap {
        /// First batch index the rebuild needed.
        needed: u64,
        /// First batch index actually available at or after it.
        first: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O error: {e}"),
            Self::Truncated => write!(f, "journal segment truncated mid-record"),
            Self::BadMagic => write!(f, "not a journal segment (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            Self::BadChecksum { stored, actual } => {
                write!(f, "journal record checksum mismatch (stored {stored:#010x}, actual {actual:#010x})")
            }
            Self::OutOfOrder(what) => write!(f, "journal batch order violated: {what}"),
            Self::Corrupt(what) => write!(f, "corrupt journal segment: {what}"),
            Self::Gap { needed, first } => {
                write!(
                    f,
                    "journal gap: rebuild needs batch {needed}, journal starts at {first}"
                )
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One journaled fleet micro-batch: everything the router knew at
/// fan-out time, sufficient to re-route any shard's sub-batch exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Fleet batch index (`batches_applied` at journal time).
    pub batch: u64,
    /// Global window end after this batch; replay advances every shard
    /// window to it, empty sub-batch or not.
    pub watermark: u32,
    /// Validated transactions in router (= sequence) order, with their
    /// fleet-wide sequence stamps.
    pub txs: Vec<(u64, Transaction)>,
}

fn encode_frame(batch: u64, watermark: u32, txs: &[(u64, Transaction)]) -> Vec<u8> {
    let payload_len = PAYLOAD_FIXED + TX_LEN * txs.len();
    let mut payload = Vec::with_capacity(payload_len);
    payload.extend_from_slice(&batch.to_le_bytes());
    payload.extend_from_slice(&watermark.to_le_bytes());
    payload.extend_from_slice(&(txs.len() as u32).to_le_bytes());
    for &(seq, t) in txs {
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&t.buyer.to_le_bytes());
        payload.extend_from_slice(&t.item.to_le_bytes());
        payload.extend_from_slice(&t.day.to_le_bytes());
        payload.extend_from_slice(&t.amount.to_bits().to_le_bytes());
    }
    let mut frame = Vec::with_capacity(FRAME_PREFIX + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("bounds checked"))
}

fn u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("bounds checked"))
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, WalError> {
    if payload.len() < PAYLOAD_FIXED {
        return Err(WalError::Corrupt(
            "record payload shorter than its fixed part",
        ));
    }
    let batch = u64_at(payload, 0);
    let watermark = u32_at(payload, 8);
    let count = u32_at(payload, 12) as usize;
    if payload.len() != PAYLOAD_FIXED + TX_LEN * count {
        return Err(WalError::Corrupt(
            "record length disagrees with its tx count",
        ));
    }
    let mut txs = Vec::with_capacity(count);
    for i in 0..count {
        let at = PAYLOAD_FIXED + TX_LEN * i;
        txs.push((
            u64_at(payload, at),
            Transaction {
                buyer: u32_at(payload, at + 8),
                item: u32_at(payload, at + 12),
                day: u32_at(payload, at + 16),
                amount: f32::from_bits(u32_at(payload, at + 20)),
            },
        ));
    }
    Ok(WalRecord {
        batch,
        watermark,
        txs,
    })
}

/// What one segment scan found.
struct SegmentScan {
    records: Vec<WalRecord>,
    /// Byte offset of the first torn/invalid frame (= clean end of the
    /// segment). Equals the file length when the segment is fully intact.
    clean_end: u64,
    /// Whether the scan stopped before the end of the file (only
    /// tolerated on the last segment).
    torn: bool,
}

/// Parses one segment. `final_segment` selects the tolerance contract:
/// a bad frame at the tail of the last segment is a clean torn tail,
/// the same bytes in a sealed segment are a typed error.
fn scan_segment(bytes: &[u8], final_segment: bool) -> Result<SegmentScan, WalError> {
    if bytes.len() < HEADER_LEN {
        // Only reachable for sealed segments; `open` removes a torn
        // last-segment header before any scan.
        return Err(WalError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = u32_at(bytes, 4);
    if version != VERSION {
        return Err(WalError::BadVersion(version));
    }
    let first_batch = u64_at(bytes, 8);
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        if pos == bytes.len() {
            return Ok(SegmentScan {
                records,
                clean_end: pos as u64,
                torn: false,
            });
        }
        let torn = |records: Vec<WalRecord>, pos: usize| {
            if final_segment {
                Ok(SegmentScan {
                    records,
                    clean_end: pos as u64,
                    torn: true,
                })
            } else {
                Err(WalError::Truncated)
            }
        };
        if bytes.len() - pos < FRAME_PREFIX {
            return torn(records, pos);
        }
        let len = u32_at(bytes, pos) as usize;
        if bytes.len() - pos - FRAME_PREFIX < len {
            return torn(records, pos);
        }
        let stored = u32_at(bytes, pos + 4);
        let payload = &bytes[pos + FRAME_PREFIX..pos + FRAME_PREFIX + len];
        let actual = crc32(payload);
        if stored != actual {
            if final_segment {
                return Ok(SegmentScan {
                    records,
                    clean_end: pos as u64,
                    torn: true,
                });
            }
            return Err(WalError::BadChecksum { stored, actual });
        }
        let record = decode_payload(payload)?;
        if records.is_empty() && record.batch != first_batch {
            return Err(WalError::Corrupt(
                "segment header disagrees with its first record",
            ));
        }
        if let Some(prev) = records.last() {
            if record.batch <= prev.batch {
                return Err(WalError::OutOfOrder(
                    "batch index regressed within a segment",
                ));
            }
        }
        records.push(record);
        pos += FRAME_PREFIX + len;
    }
}

fn segment_name(first_batch: u64) -> String {
    format!("{first_batch:020}.{SEGMENT_EXT}")
}

fn first_batch_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, WalError> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| first_batch_of(p).is_some())
        .collect();
    // 20-digit zero-padded names: lexicographic order is batch order,
    // but sort numerically anyway so a hand-renamed file cannot reorder.
    segments.sort_by_key(|p| first_batch_of(p).expect("filtered above"));
    Ok(segments)
}

/// The append side of the journal (see module docs). One writer — the
/// router thread via [`FleetCore`](crate::router::FleetCore) — appends;
/// recovery paths read via [`Self::records`].
#[derive(Debug)]
pub struct FleetWal {
    dir: PathBuf,
    segment_bytes: u64,
    /// Open append handle to the last segment, if any exists yet.
    current: Option<CurrentSegment>,
    /// Batch index of the last appended (or recovered) record.
    last_batch: Option<u64>,
}

#[derive(Debug)]
struct CurrentSegment {
    file: File,
    len: u64,
}

impl FleetWal {
    /// Opens (creating if needed) the journal at `dir`, repairing a torn
    /// tail left by a crash: a partial frame at the end of the last
    /// segment is truncated away, a partial header (crash mid-rotation)
    /// removes the empty segment. Deeper corruption is a typed error.
    pub fn open(dir: &Path, segment_bytes: u64) -> Result<Self, WalError> {
        fs::create_dir_all(dir)?;
        let mut segments = list_segments(dir)?;
        // A crash between segment creation and the header sync can leave
        // a final segment too short to even name its first batch; it
        // holds no records by construction.
        if let Some(last) = segments.last() {
            if fs::metadata(last)?.len() < HEADER_LEN as u64 {
                fs::remove_file(last)?;
                segments.pop();
            }
        }
        let mut last_batch = None;
        for (k, seg) in segments.iter().enumerate() {
            let final_segment = k + 1 == segments.len();
            let bytes = fs::read(seg)?;
            let scan = scan_segment(&bytes, final_segment)?;
            if let Some(prev) = last_batch {
                if scan.records.first().is_some_and(|r| r.batch <= prev) {
                    return Err(WalError::OutOfOrder(
                        "batch index regressed across segments",
                    ));
                }
            }
            if let Some(r) = scan.records.last() {
                last_batch = Some(r.batch);
            }
            if scan.torn {
                // Clean torn tail: cut the file back to the last intact
                // record so the next append starts from a valid edge.
                OpenOptions::new()
                    .write(true)
                    .open(seg)?
                    .set_len(scan.clean_end)?;
            }
        }
        let current = match segments.last() {
            None => None,
            Some(path) => {
                let file = OpenOptions::new().append(true).open(path)?;
                let len = fs::metadata(path)?.len();
                Some(CurrentSegment { file, len })
            }
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max((HEADER_LEN + FRAME_PREFIX + PAYLOAD_FIXED) as u64),
            current,
            last_batch,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Batch index of the newest journaled record, if any.
    pub fn tail_batch(&self) -> Option<u64> {
        self.last_batch
    }

    /// Appends one validated fleet micro-batch, rotating to a fresh
    /// segment when the current one is full. The frame is flushed and
    /// synced before return — once `append` succeeds, the batch survives
    /// a crash.
    pub fn append(
        &mut self,
        batch: u64,
        watermark: u32,
        txs: &[(u64, Transaction)],
    ) -> Result<(), WalError> {
        if self.last_batch.is_some_and(|last| batch <= last) {
            return Err(WalError::OutOfOrder(
                "append batch not beyond the journal tail",
            ));
        }
        let frame = encode_frame(batch, watermark, txs);
        let rotate = match &self.current {
            None => true,
            // A fresh segment accepts at least one record however large;
            // otherwise rotate once the configured size would be passed.
            Some(c) => c.len > HEADER_LEN as u64 && c.len + frame.len() as u64 > self.segment_bytes,
        };
        if rotate {
            if let Some(c) = self.current.take() {
                c.file.sync_all()?;
            }
            let path = self.dir.join(segment_name(batch));
            let mut file = OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&batch.to_le_bytes());
            file.write_all(&header)?;
            self.current = Some(CurrentSegment {
                file,
                len: HEADER_LEN as u64,
            });
        }
        let c = self.current.as_mut().expect("rotation ensured a segment");
        c.file.write_all(&frame)?;
        c.file.sync_data()?;
        c.len += frame.len() as u64;
        self.last_batch = Some(batch);
        Ok(())
    }

    /// Reads every intact record in batch order. A torn tail on the last
    /// segment yields the intact prefix; corruption anywhere else is a
    /// typed error (see module docs).
    pub fn records(&self) -> Result<Vec<WalRecord>, WalError> {
        read_records(&self.dir)
    }

    /// Drops segments made fully redundant by checkpoints: a segment is
    /// removed when every batch it holds is below `durable_batches`
    /// (= the minimum `batches_applied` across all shards' durable
    /// images). The last segment is always kept — it is the append
    /// target. Returns the number of segments removed.
    pub fn truncate_covered(&mut self, durable_batches: u64) -> Result<u64, WalError> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        // Segment k covers [first_k, first_{k+1}); it is fully durable
        // exactly when the next segment starts at or below the durable
        // watermark.
        for pair in segments.windows(2) {
            let next_first = first_batch_of(&pair[1]).expect("listed segments parse");
            if next_first <= durable_batches {
                fs::remove_file(&pair[0])?;
                removed += 1;
            } else {
                break;
            }
        }
        Ok(removed)
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> Result<usize, WalError> {
        Ok(list_segments(&self.dir)?.len())
    }
}

/// Reads every intact record under `dir` in batch order (the static
/// counterpart of [`FleetWal::records`], usable without an open journal).
pub fn read_records(dir: &Path) -> Result<Vec<WalRecord>, WalError> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let segments = list_segments(dir)?;
    let mut all: Vec<WalRecord> = Vec::new();
    for (k, seg) in segments.iter().enumerate() {
        let final_segment = k + 1 == segments.len();
        let mut bytes = Vec::new();
        File::open(seg)?.read_to_end(&mut bytes)?;
        if final_segment && bytes.len() < HEADER_LEN {
            // Crash mid-rotation: the last segment never completed its
            // header and holds no records.
            break;
        }
        let scan = scan_segment(&bytes, final_segment)?;
        if let (Some(prev), Some(first)) = (all.last(), scan.records.first()) {
            if first.batch <= prev.batch {
                return Err(WalError::OutOfOrder(
                    "batch index regressed across segments",
                ));
            }
        }
        all.extend(scan.records);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("glp_wal_{}_{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tx(buyer: u32, day: u32) -> Transaction {
        Transaction {
            buyer,
            item: buyer + 1000,
            day,
            amount: 9.5 + buyer as f32,
        }
    }

    /// A small journal spanning several segments: `n` batches, 3
    /// transactions each, tiny segment size to force rotation.
    fn build(dir: &Path, n: u64) -> Vec<WalRecord> {
        let mut wal = FleetWal::open(dir, 256).expect("open");
        let mut seq = 0u64;
        let mut expected = Vec::new();
        for b in 0..n {
            let txs: Vec<(u64, Transaction)> = (0..3)
                .map(|j| {
                    seq += 1;
                    (seq, tx(10 * b as u32 + j, b as u32))
                })
                .collect();
            wal.append(b, b as u32 + 1, &txs).expect("append");
            expected.push(WalRecord {
                batch: b,
                watermark: b as u32 + 1,
                txs,
            });
        }
        expected
    }

    #[test]
    fn roundtrips_across_segment_rotation() {
        let dir = temp_dir("roundtrip");
        let expected = build(&dir, 12);
        let wal = FleetWal::open(&dir, 256).expect("reopen");
        assert!(
            wal.segment_count().unwrap() > 1,
            "rotation must have split segments"
        );
        assert_eq!(wal.tail_batch(), Some(11));
        let records = wal.records().expect("read");
        assert_eq!(records, expected);
        // Amount bits survive exactly (f32 roundtrip through bits).
        assert_eq!(
            records[3].txs[2].1.amount.to_bits(),
            expected[3].txs[2].1.amount.to_bits()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_rejects_non_monotone_batches() {
        let dir = temp_dir("monotone");
        build(&dir, 4);
        let mut wal = FleetWal::open(&dir, 256).expect("reopen");
        assert!(matches!(
            wal.append(3, 5, &[]),
            Err(WalError::OutOfOrder(_))
        ));
        assert!(matches!(
            wal.append(2, 5, &[]),
            Err(WalError::OutOfOrder(_))
        ));
        wal.append(4, 5, &[]).expect("tail + 1 appends fine");
        // Skipping ahead is allowed on append (monotone, not dense);
        // density is enforced by replay, which knows what it needs.
        wal.append(7, 6, &[]).expect("monotone skip appends");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = temp_dir("torn");
        let expected = build(&dir, 6);
        let segments = list_segments(&dir).unwrap();
        let last = segments.last().unwrap().clone();
        // Simulate a crash mid-append: chop the last 5 bytes.
        let len = fs::metadata(&last).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&last)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        // The torn record is the last one; reading yields the prefix.
        let records = read_records(&dir).expect("prefix survives");
        assert_eq!(records.len(), expected.len() - 1);
        assert_eq!(records, expected[..expected.len() - 1]);
        // Re-open repairs the tail physically and appends continue.
        let mut wal = FleetWal::open(&dir, 256).expect("open repairs");
        assert_eq!(wal.tail_batch(), Some(4));
        wal.append(5, 6, &[(100, tx(7, 5))])
            .expect("append after repair");
        let records = read_records(&dir).expect("read");
        assert_eq!(records.len(), expected.len());
        assert_eq!(records.last().unwrap().txs[0].0, 100);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_mid_rotation_drops_the_empty_segment() {
        let dir = temp_dir("midrot");
        build(&dir, 6);
        // A rotation that crashed after creating the file but before the
        // header completed: 3 stray bytes.
        fs::write(dir.join(segment_name(99)), [0x47, 0x4c, 0x50]).unwrap();
        let records = read_records(&dir).expect("stray partial header tolerated");
        assert_eq!(records.len(), 6);
        let wal = FleetWal::open(&dir, 256).expect("open removes it");
        assert_eq!(wal.tail_batch(), Some(5));
        assert!(
            !dir.join(segment_name(99)).exists(),
            "partial segment removed"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncation_drops_only_fully_covered_segments() {
        let dir = temp_dir("truncate");
        build(&dir, 12);
        let mut wal = FleetWal::open(&dir, 256).expect("open");
        let before = wal.segment_count().unwrap();
        assert!(before >= 3);
        // Nothing durable: nothing to drop.
        assert_eq!(wal.truncate_covered(0).unwrap(), 0);
        // Everything durable: all but the append segment drops.
        let removed = wal.truncate_covered(12).unwrap();
        assert_eq!(removed as usize, before - 1);
        assert_eq!(wal.segment_count().unwrap(), 1);
        // The surviving tail still reads, and replay from the durable
        // point needs nothing the journal lost.
        let records = wal.records().expect("read");
        assert!(records.iter().all(|r| r.batch < 12));
        // Appends continue after truncation.
        wal.append(12, 13, &[]).expect("append after truncate");
        fs::remove_dir_all(&dir).ok();
    }

    /// The journal's analogue of the checkpoint's every-byte corruption
    /// sweep: flip one bit at every byte offset of every segment, and
    /// require that reading either fails with a typed error or yields a
    /// clean prefix of the pristine records — never a panic, never a
    /// record that differs from what was written.
    #[test]
    fn every_single_byte_corruption_is_loud_or_a_clean_prefix() {
        let dir = temp_dir("sweep");
        let pristine = build(&dir, 5);
        let segments = list_segments(&dir).unwrap();
        assert!(
            segments.len() >= 2,
            "sweep must cover sealed and final segments"
        );
        for seg in &segments {
            let original = fs::read(seg).unwrap();
            for i in 0..original.len() {
                let mut corrupted = original.clone();
                corrupted[i] ^= 1 << (i % 8);
                fs::write(seg, &corrupted).unwrap();
                match read_records(&dir) {
                    Err(_) => {} // typed error: loud, acceptable
                    Ok(records) => {
                        assert!(
                            records.len() <= pristine.len() && records == pristine[..records.len()],
                            "byte {i} of {} replayed silently wrong",
                            seg.display()
                        );
                    }
                }
            }
            fs::write(seg, &original).unwrap();
        }
        // Control: pristine journal reads back exactly.
        assert_eq!(read_records(&dir).unwrap(), pristine);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reading_a_missing_directory_is_empty_not_an_error() {
        let dir = temp_dir("missing");
        assert!(read_records(&dir).unwrap().is_empty());
    }
}
