//! Community-aware keyspace partitioning for the sharded service.
//!
//! The router's placement problem: cross-shard edges are the expensive
//! part of sharded label propagation (every one needs the boundary
//! exchange of [`crate::exchange`]), so users who cluster together
//! should land on the same shard. A plain `hash(user) % shards` scatters
//! every community across every shard — correct but worst-case for the
//! exchange. The [`Partitioner`] instead hashes the user's *community*
//! when one is known (all members land together), falls back to hashing
//! the user id when not, and accepts explicit per-community placement
//! overrides for operator-driven rebalancing. Hashing is a fixed
//! SplitMix64-style mix, seeded, so placement is deterministic across
//! runs and processes — a prerequisite for the fleet's byte-identity
//! guarantee and for per-shard checkpoint recovery (a restarted fleet
//! must route every user to the shard that holds its history).

use std::collections::HashMap;

/// Deterministic community-aware `user → shard` map.
#[derive(Clone, Debug)]
pub struct Partitioner {
    shards: usize,
    seed: u64,
    /// `user → community` for users with a known community.
    community_of: HashMap<u32, u32>,
    /// Explicit `community → shard` placements overriding the hash.
    overrides: HashMap<u32, usize>,
}

impl Partitioner {
    /// A community-blind partitioner: every user is hashed individually.
    pub fn hashed(shards: usize, seed: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            shards,
            seed,
            community_of: HashMap::new(),
            overrides: HashMap::new(),
        }
    }

    /// A community-aware partitioner: users in `communities` are placed
    /// by their community (co-locating each community on one shard),
    /// unknown users by their own id.
    pub fn with_communities(
        shards: usize,
        seed: u64,
        communities: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut p = Self::hashed(shards, seed);
        p.community_of = communities.into_iter().collect();
        p
    }

    /// A community-aware partitioner that places the *fixed* community
    /// set round-robin in deterministic hash order, so shard loads stay
    /// near-uniform even when there are only a handful of communities
    /// (where plain community hashing routinely lands 3-vs-1). The
    /// trade-off against [`Self::with_communities`]: growing the
    /// community set later reshuffles placement, so this is for fleets
    /// whose communities are known at start — the scaling bench and any
    /// deployment partitioned by a fixed region map. Explicit
    /// [`Self::with_placement`] overrides still win.
    pub fn balanced(
        shards: usize,
        seed: u64,
        communities: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut p = Self::with_communities(shards, seed, communities);
        let mut cs: Vec<u32> = p.community_of.values().copied().collect();
        cs.sort_unstable();
        cs.dedup();
        // Deterministic shuffle, then round-robin: communities with
        // adjacent ids do not pile onto adjacent shards.
        cs.sort_by_key(|&c| (mix(seed ^ COMMUNITY_TAG ^ u64::from(c)), c));
        for (i, &c) in cs.iter().enumerate() {
            p.overrides.insert(c, i % shards);
        }
        p
    }

    /// Pins `community` to `shard`, overriding the hash — the
    /// rebalancing hook.
    pub fn with_placement(mut self, community: u32, shard: usize) -> Self {
        assert!(shard < self.shards, "placement beyond the fleet");
        self.overrides.insert(community, shard);
        self
    }

    /// Number of shards this partitioner routes across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `user`.
    pub fn shard_of(&self, user: u32) -> usize {
        match self.community_of.get(&user) {
            Some(&c) => match self.overrides.get(&c) {
                Some(&s) => s,
                // Tag community hashes so a community id and a bare user
                // id never collide into correlated placement.
                None => {
                    (mix(self.seed ^ COMMUNITY_TAG ^ u64::from(c)) % self.shards as u64) as usize
                }
            },
            None => (mix(self.seed ^ u64::from(user)) % self.shards as u64) as usize,
        }
    }
}

/// Domain tag separating community-id hashes from user-id hashes.
const COMMUNITY_TAG: u64 = 0xC0AB_5EA7_ED00_0001;

/// SplitMix64 finalizer — a fixed, portable 64-bit mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let p = Partitioner::hashed(1, 7);
        assert!((0..1_000).all(|u| p.shard_of(u) == 0));
    }

    #[test]
    fn hashed_placement_is_deterministic_and_balanced() {
        let p = Partitioner::hashed(4, 42);
        let q = Partitioner::hashed(4, 42);
        let mut counts = [0usize; 4];
        for u in 0..10_000u32 {
            let s = p.shard_of(u);
            assert_eq!(s, q.shard_of(u), "placement must be deterministic");
            counts[s] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Fair hash: each shard within ±25% of the uniform share.
            assert!(
                (1_875..=3_125).contains(&c),
                "shard {i} got {c} of 10000 users"
            );
        }
    }

    #[test]
    fn communities_are_co_located() {
        // 100 communities of 50 users each.
        let map = (0..5_000u32).map(|u| (u, u / 50));
        let p = Partitioner::with_communities(4, 42, map);
        for c in 0..100u32 {
            let home = p.shard_of(c * 50);
            assert!(
                (0..50).all(|i| p.shard_of(c * 50 + i) == home),
                "community {c} split across shards"
            );
        }
    }

    #[test]
    fn balanced_placement_spreads_few_communities_evenly() {
        // 8 equal communities on 4 shards: exactly 2 each, co-located,
        // and deterministic across instances.
        let map = || (0..800u32).map(|u| (u, u / 100));
        let p = Partitioner::balanced(4, 7, map());
        let q = Partitioner::balanced(4, 7, map());
        let mut per_shard = [0usize; 4];
        for c in 0..8u32 {
            let home = p.shard_of(c * 100);
            assert_eq!(home, q.shard_of(c * 100), "placement must be stable");
            assert!(
                (0..100).all(|i| p.shard_of(c * 100 + i) == home),
                "community {c} split across shards"
            );
            per_shard[home] += 1;
        }
        assert_eq!(per_shard, [2, 2, 2, 2], "round-robin must balance");
    }

    #[test]
    fn placement_override_wins() {
        let map = (0..100u32).map(|u| (u, u / 50));
        let p = Partitioner::with_communities(4, 42, map).with_placement(1, 3);
        assert!((50..100).all(|u| p.shard_of(u) == 3));
    }
}
