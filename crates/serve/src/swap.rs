//! Epoch-swapped publication: readers load an `Arc` snapshot through a
//! momentary lock, writers swap the pointer in O(1).
//!
//! The recluster stage runs label propagation for milliseconds to
//! seconds; queries must never wait on it. The contract here is that the
//! lock is only ever held for the pointer clone/swap itself — LP runs
//! entirely outside, on a private snapshot, and [`EpochCell::publish`]
//! installs the finished result in one step. An [`AtomicU64`] epoch lets
//! callers cheaply detect staleness ("has anything been published since I
//! last looked?") without loading the snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A published value of type `T` behind an epoch counter.
#[derive(Debug)]
pub struct EpochCell<T> {
    current: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// A cell holding `initial` at epoch 0.
    pub fn new(initial: T) -> Self {
        Self::with_epoch(initial, 0)
    }

    /// A cell holding `initial` at a given starting epoch — used by
    /// checkpoint restore so epoch numbering continues across a restart
    /// instead of resetting (staleness comparisons stay monotone).
    pub fn with_epoch(initial: T, epoch: u64) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone — wait time is bounded by other pointer-sized critical
    /// sections, never by a recluster. Poisoning is recovered, not
    /// propagated: the critical section only moves a pointer, so a
    /// poisoned cell still holds a fully valid `Arc` and readers must
    /// keep serving it (the last good snapshot) rather than panic.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Installs a new snapshot and returns the new epoch (monotonically
    /// increasing from the starting epoch plus one).
    pub fn publish(&self, value: T) -> u64 {
        let arc = Arc::new(value);
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = arc;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Publications so far (0 = still the initial value).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let cell = EpochCell::new(1u32);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.publish(2), 1);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn old_snapshots_stay_valid_after_swap() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.publish(vec![4]);
        assert_eq!(*old, vec![1, 2, 3]); // reader keeps its Arc
        assert_eq!(*cell.load(), vec![4]);
    }

    #[test]
    fn concurrent_readers_see_some_published_value() {
        let cell = Arc::new(EpochCell::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            handles.push(thread::spawn(move || {
                let mut last = 0;
                for _ in 0..10_000 {
                    let v = *cell.load();
                    assert!(v >= last, "snapshot went backwards");
                    last = v;
                }
            }));
        }
        for i in 1..=1_000 {
            cell.publish(i);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.epoch(), 1_000);
    }
}
