//! The always-on service: ingest → window → recluster → verdicts, wired
//! together with plain threads and channels.
//!
//! Two layers:
//!
//! * [`ServiceCore`] — the synchronous heart: apply a micro-batch, run a
//!   recluster, look up a verdict. No threads of its own; tests and the
//!   determinism suite drive it step by step.
//! * [`FraudService`] — the threaded shell: a **batcher** thread drains
//!   the ingest queue into micro-batches and applies them, and a
//!   **recluster** thread rebuilds verdicts when poked. Requests to
//!   recluster travel over a capacity-1 channel: if one is already in
//!   flight the request coalesces (counted), so recluster work can never
//!   queue up behind itself.
//!
//! Shared state is exactly two cells: the window behind a `Mutex` (held
//! only to apply a batch or clone out a materialization) and the verdict
//! snapshot behind an [`EpochCell`] (pointer swap). Queries touch only
//! the latter — a query observes LP results, it never waits on LP.

use crate::config::ServeConfig;
use crate::ingest::{ingest_pair, Batcher, Closed, IngestGate, Submitted};
use crate::query::{FraudScorer, Verdict, VerdictSnapshot};
use crate::recluster::recluster;
use crate::swap::EpochCell;
use crate::telemetry::Telemetry;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use glp_fraud::{IncrementalWindow, Transaction};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// The synchronous scoring core shared by the service threads, the
/// tests, and the bench harness's calibration phase.
pub struct ServiceCore {
    cfg: ServeConfig,
    window: Mutex<IncrementalWindow>,
    blacklist: Vec<u32>,
    verdicts: EpochCell<VerdictSnapshot>,
    telemetry: Arc<Telemetry>,
    batches_applied: AtomicU64,
}

impl ServiceCore {
    /// A core with an empty window and the given blacklist seeds.
    pub fn new(cfg: ServeConfig, blacklist: Vec<u32>) -> Self {
        Self {
            window: Mutex::new(IncrementalWindow::empty(cfg.window_days)),
            cfg,
            blacklist,
            verdicts: EpochCell::new(VerdictSnapshot::default()),
            telemetry: Arc::new(Telemetry::new()),
            batches_applied: AtomicU64::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The telemetry block.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Micro-batches applied so far.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied.load(Ordering::Relaxed)
    }

    /// Batches applied since the current snapshot was materialized — the
    /// live staleness, bounded by `recluster_every_batches` plus one
    /// in-flight recluster whenever the recluster thread keeps up.
    pub fn staleness_batches(&self) -> u64 {
        self.batches_applied()
            .saturating_sub(self.verdicts.load().as_of_batch)
    }

    /// Applies one stamped micro-batch to the window and records ingest
    /// telemetry. Returns the new applied-batch count.
    pub fn apply(&self, batch: &[Submitted]) -> u64 {
        if batch.is_empty() {
            return self.batches_applied();
        }
        let txs: Vec<Transaction> = batch.iter().map(|s| s.tx).collect();
        {
            let mut w = self.window.lock().expect("window poisoned");
            w.apply_batch(&txs);
        }
        let applied = Instant::now();
        for s in batch {
            let lag = applied.duration_since(s.at).as_nanos() as u64;
            self.telemetry.ingest_lag.record(lag);
        }
        self.telemetry.batch_size.record(batch.len() as u64);
        self.telemetry.batches.fetch_add(1, Ordering::Relaxed);
        self.batches_applied.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Convenience for synchronous callers: stamps and applies raw
    /// transactions as one micro-batch.
    pub fn apply_transactions(&self, txs: &[Transaction]) -> u64 {
        let now = Instant::now();
        let batch: Vec<Submitted> = txs.iter().map(|&tx| Submitted { tx, at: now }).collect();
        self.apply(&batch)
    }

    /// Materializes the current window, reclusters it, and publishes the
    /// verdict snapshot. The window lock is held only for the
    /// materialization (a replay of the live log); LP and scoring run on
    /// the private copy.
    pub fn recluster_now(&self) {
        let started = Instant::now();
        let (workload, window_end, as_of) = {
            let w = self.window.lock().expect("window poisoned");
            (
                w.materialize(),
                w.end(),
                self.batches_applied.load(Ordering::Relaxed),
            )
        };
        let snapshot = if workload.graph.num_vertices() == 0 {
            // Nothing to cluster yet: publish the empty scoring.
            VerdictSnapshot {
                window_end,
                as_of_batch: as_of,
                ..VerdictSnapshot::default()
            }
        } else {
            let (snapshot, report) =
                recluster(&workload, &self.blacklist, &self.cfg, as_of, window_end);
            self.telemetry.merge_gpu(&report.gpu_counters);
            snapshot
        };
        self.verdicts.publish(snapshot);
        self.telemetry.reclusters.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .recluster_wall
            .record(started.elapsed().as_nanos() as u64);
    }

    /// The freshest published snapshot.
    pub fn snapshot(&self) -> Arc<VerdictSnapshot> {
        self.verdicts.load()
    }

    /// Snapshots published so far.
    pub fn epoch(&self) -> u64 {
        self.verdicts.epoch()
    }
}

/// A cloneable, read-only scoring handle: the in-process query
/// front-end. Lookups are two binary searches against an immutable
/// snapshot — they never contend with ingest or reclustering beyond a
/// pointer-clone.
#[derive(Clone)]
pub struct QueryHandle {
    core: Arc<ServiceCore>,
}

impl FraudScorer for QueryHandle {
    fn score(&self, user: u32) -> Verdict {
        let t0 = Instant::now();
        let v = self.core.verdicts.load().verdict(user);
        self.core
            .telemetry
            .query_latency
            .record(t0.elapsed().as_nanos() as u64);
        self.core.telemetry.queries.fetch_add(1, Ordering::Relaxed);
        v
    }

    fn snapshot(&self) -> Arc<VerdictSnapshot> {
        self.core.verdicts.load()
    }
}

/// The threaded always-on service.
pub struct FraudService {
    core: Arc<ServiceCore>,
    gate: IngestGate,
    recluster_tx: Sender<()>,
    batcher: Option<JoinHandle<()>>,
    recluster_worker: Option<JoinHandle<()>>,
}

impl FraudService {
    /// Starts the service: spawns the batcher and recluster threads.
    pub fn start(cfg: ServeConfig, blacklist: Vec<u32>) -> Self {
        let core = Arc::new(ServiceCore::new(cfg.clone(), blacklist));
        let (gate, batch_rx) = ingest_pair(
            cfg.queue_capacity,
            cfg.shed_policy,
            Arc::clone(core.telemetry()),
        );
        // Capacity 1: at most one recluster pending beyond the one in
        // flight; further requests coalesce.
        let (recluster_tx, recluster_rx): (Sender<()>, Receiver<()>) = bounded(1);

        let batcher = {
            let core = Arc::clone(&core);
            let recluster_tx = recluster_tx.clone();
            let batcher = Batcher::new(batch_rx, cfg.max_batch, cfg.batch_budget);
            thread::spawn(move || batch_loop(&core, &batcher, &recluster_tx))
        };
        let recluster_worker = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                while recluster_rx.recv().is_ok() {
                    core.recluster_now();
                }
            })
        };
        Self {
            core,
            gate,
            recluster_tx,
            batcher: Some(batcher),
            recluster_worker: Some(recluster_worker),
        }
    }

    /// A producer-side submission gate (cloneable).
    pub fn gate(&self) -> IngestGate {
        self.gate.clone()
    }

    /// Submits one transaction through the service's own gate.
    pub fn submit(&self, tx: Transaction) -> Result<(), Transaction> {
        self.gate.submit(tx)
    }

    /// A query handle (cloneable).
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// The synchronous core (telemetry, staleness, snapshots).
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// Asks the recluster thread for a fresh snapshot now. Coalesces
    /// (counted) if one is already pending.
    pub fn force_recluster(&self) {
        match self.recluster_tx.try_send(()) {
            Ok(()) | Err(TrySendError::Disconnected(())) => {}
            Err(TrySendError::Full(())) => {
                self.core
                    .telemetry
                    .reclusters_coalesced
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stops the service: closes the ingest queue, lets the batcher
    /// drain what is already queued, runs one final recluster so the
    /// last batches are scored, and joins both threads. Any gates cloned
    /// out of the service must be dropped first, or the queue never
    /// reads as closed.
    pub fn shutdown(mut self) -> Arc<ServiceCore> {
        drop(self.gate);
        if let Some(h) = self.batcher.take() {
            h.join().expect("batcher panicked");
        }
        drop(self.recluster_tx);
        if let Some(h) = self.recluster_worker.take() {
            h.join().expect("recluster worker panicked");
        }
        self.core.recluster_now();
        Arc::clone(&self.core)
    }
}

fn request_recluster(core: &ServiceCore, recluster_tx: &Sender<()>) {
    match recluster_tx.try_send(()) {
        Ok(()) | Err(TrySendError::Disconnected(())) => {}
        Err(TrySendError::Full(())) => {
            core.telemetry
                .reclusters_coalesced
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn batch_loop(core: &ServiceCore, batcher: &Batcher, recluster_tx: &Sender<()>) {
    loop {
        // Staleness gate: if verdicts have fallen max_staleness_batches
        // behind the window, stop applying until the recluster thread
        // catches up. The queue keeps absorbing traffic meanwhile and
        // sheds (counted) once full — bounded staleness turns overload
        // into backpressure instead of ever-staler answers.
        while core.staleness_batches() >= core.cfg.max_staleness_batches {
            request_recluster(core, recluster_tx);
            thread::sleep(std::time::Duration::from_micros(200));
        }
        match batcher.next_batch() {
            Err(Closed) => return,
            Ok(batch) => {
                if batch.is_empty() {
                    continue; // idle tick
                }
                let applied = core.apply(&batch);
                if applied.is_multiple_of(core.cfg.recluster_every_batches) {
                    request_recluster(core, recluster_tx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShedPolicy;
    use glp_fraud::{TxConfig, TxStream};
    use std::time::Duration;

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 1_000,
            num_items: 400,
            days: 20,
            tx_per_day: 600,
            num_rings: 3,
            ring_size: 10,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.25,
            ..Default::default()
        })
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            queue_capacity: 8_192,
            max_batch: 256,
            batch_budget: Duration::from_millis(2),
            shed_policy: ShedPolicy::DropOldest,
            recluster_every_batches: 4,
            engine_shards: 2,
            ..ServeConfig::default()
        }
        .with_window_days(10)
    }

    #[test]
    fn core_scores_like_the_offline_pipeline_would() {
        let s = stream();
        let core = ServiceCore::new(cfg(), s.blacklist.clone());
        for day in 0..s.config.days {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            core.apply_transactions(&txs);
        }
        core.recluster_now();
        let snap = core.snapshot();
        assert_eq!(snap.window_end, s.config.days);
        assert!(snap.num_flagged() > 0, "rings should be flagged");
        assert_eq!(core.epoch(), 1);
        assert_eq!(core.staleness_batches(), 0);
    }

    #[test]
    fn threaded_service_end_to_end() {
        let s = stream();
        let service = FraudService::start(cfg(), s.blacklist.clone());
        let handle = service.handle();
        for t in s.window(0, s.config.days) {
            service.submit(*t).expect("service accepts while running");
        }
        let core = service.shutdown();
        // Shutdown drains the queue and reclusters once more, so every
        // submitted transaction is scored.
        let snap = core.snapshot();
        assert_eq!(snap.window_end, s.config.days);
        assert!(snap.num_flagged() > 0);
        let flagged_user = snap.flagged[0].0;
        assert!(matches!(
            handle.score(flagged_user),
            Verdict::Flagged { .. }
        ));
        let t = core.telemetry();
        assert!(t.batches.load(Ordering::Relaxed) > 0);
        assert!(t.ingest_lag.count() > 0);
        assert_eq!(
            t.ingest_lag.count(),
            t.ingested.load(Ordering::Relaxed) - t.shed_total()
        );
    }

    #[test]
    fn reject_new_backpressure_is_counted_and_nonblocking() {
        // A tiny queue and a batcher that cannot keep up: submissions
        // must return (not block) and shed must be counted.
        let s = stream();
        let mut c = cfg();
        c.queue_capacity = 64;
        c.shed_policy = ShedPolicy::RejectNew;
        let service = FraudService::start(c, s.blacklist.clone());
        let mut rejected = 0u64;
        for t in s.window(0, s.config.days) {
            if service.submit(*t).is_err() {
                rejected += 1;
            }
        }
        let core = service.shutdown();
        let t = core.telemetry();
        assert_eq!(t.shed_rejected_new.load(Ordering::Relaxed), rejected);
        assert_eq!(t.shed_dropped_oldest.load(Ordering::Relaxed), 0);
        // Accepted = submitted - rejected, and all accepted were applied.
        assert_eq!(
            t.ingested.load(Ordering::Relaxed) + rejected,
            s.window(0, s.config.days).count() as u64
        );
        assert_eq!(t.ingest_lag.count(), t.ingested.load(Ordering::Relaxed));
    }

    #[test]
    fn staleness_gate_bounds_staleness_and_sheds_under_overload() {
        // Cadence of 1 and a staleness bound of 1: every batch must be
        // reclustered before the next applies. The batcher is therefore
        // slower than the producer, the tiny queue fills, and overload
        // surfaces as counted rejections — not as stale verdicts.
        let s = stream();
        let mut c = cfg();
        c.queue_capacity = 64;
        c.max_batch = 64;
        c.shed_policy = ShedPolicy::RejectNew;
        c.recluster_every_batches = 1;
        c.max_staleness_batches = 1;
        let service = FraudService::start(c, s.blacklist.clone());
        let mut rejected = 0u64;
        for t in s.window(0, s.config.days) {
            if service.submit(*t).is_err() {
                rejected += 1;
            }
        }
        let core = service.shutdown();
        let t = core.telemetry();
        assert!(rejected > 0, "overload should shed");
        assert_eq!(t.shed_rejected_new.load(Ordering::Relaxed), rejected);
        assert!(t.reclusters.load(Ordering::Relaxed) > 0);
        assert_eq!(core.staleness_batches(), 0, "shutdown reclusters last");
    }

    #[test]
    fn queries_never_block_on_reclustering() {
        let s = stream();
        let core = ServiceCore::new(cfg(), s.blacklist.clone());
        let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
        core.apply_transactions(&all);
        core.recluster_now();
        let core = Arc::new(core);
        let handle = QueryHandle {
            core: Arc::clone(&core),
        };
        // Hammer queries from this thread while a recluster runs in
        // another; every query must complete well inside the recluster's
        // wall time.
        let reclusterer = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                for _ in 0..3 {
                    core.recluster_now();
                }
            })
        };
        for i in 0..50_000u32 {
            let _ = handle.score(i % 1_000);
        }
        reclusterer.join().unwrap();
        let t = core.telemetry();
        assert_eq!(t.queries.load(Ordering::Relaxed), 50_000);
        // p99 query latency stays microseconds even with reclusters
        // running: pointer-clone + two binary searches.
        let p99 = t.query_latency.quantile(0.99);
        assert!(p99 < 1_000_000, "p99 query latency {p99} ns");
    }
}
