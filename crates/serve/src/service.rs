//! The always-on service: ingest → window → recluster → verdicts, wired
//! together with plain threads and channels — and supervised, so it
//! *stays* always-on under partial failure.
//!
//! Two layers:
//!
//! * [`ServiceCore`] — the synchronous heart: apply a micro-batch, run a
//!   recluster, look up a verdict, write/restore a checkpoint. No threads
//!   of its own; tests and the determinism suite drive it step by step.
//! * [`FraudService`] — the threaded shell: a **batcher** thread drains
//!   the ingest queue into micro-batches and applies them, and a
//!   **recluster** thread rebuilds verdicts when poked. Requests to
//!   recluster travel over a capacity-1 channel: if one is already in
//!   flight the request coalesces (counted), so recluster work can never
//!   queue up behind itself.
//!
//! Both workers run under [`supervisor`](crate::supervisor) threads: a
//! panic is caught, counted, recorded in the [`HealthMonitor`], and
//! answered with a capped-exponential-backoff restart until the health
//! machine says [`Down`](HealthState::Down). Queries keep being served
//! from the last good snapshot throughout — every lock on the query and
//! telemetry paths recovers from poisoning instead of propagating it.
//!
//! Shared state is exactly two cells: the window behind a `Mutex` (held
//! only to apply a batch or clone out a materialization) and the verdict
//! snapshot behind an [`EpochCell`] (pointer swap). Queries touch only
//! the latter — a query observes LP results, it never waits on LP.
//!
//! Durability is the window itself: with `checkpoint_path` set, the
//! batcher periodically persists the window (plus clocks and counters)
//! through [`glp_fraud::checkpoint`], and [`FraudService::recover`]
//! resumes from the last checkpoint with LP output byte-identical to an
//! uninterrupted run (pinned in `tests/checkpoint_restore.rs`).

use crate::config::ServeConfig;
#[cfg(feature = "fault-injection")]
use crate::faults::FaultPlan;
use crate::health::{HealthMonitor, HealthReport, HealthState, HealthThresholds};
use crate::ingest::{ingest_pair, Batcher, BurstState, Closed, IngestGate, Submitted};
use crate::query::{FraudScorer, Verdict, VerdictSnapshot};
use crate::recluster::{absorb_outcome, ReclusterMode, ReclusterRun, WarmState};
use crate::supervisor::{supervise, RestartPolicy, WorkerExit, WorkerOutcome, WorkerStatus};
use crate::swap::EpochCell;
use crate::telemetry::Telemetry;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use glp_fraud::checkpoint::{CheckpointError, WindowCheckpoint};
use glp_fraud::{IncrementalWindow, Transaction};
use glp_trace::{Category, Clock, Tracer};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// The synchronous scoring core shared by the service threads, the
/// tests, and the bench harness's calibration phase.
pub struct ServiceCore {
    cfg: ServeConfig,
    window: Mutex<IncrementalWindow>,
    /// Warm-start state; the lock also serializes reclusters, so at most
    /// one LP run consumes/produces the memo at a time.
    recluster: Mutex<WarmState>,
    /// The live blacklist seeds. Mutable because label noise is real:
    /// entries get retracted and added while the service runs
    /// ([`Self::update_blacklist`]). A change resets the warm-start memo
    /// — the memo's coverage check ([`LpMemo::covers`]) compares window
    /// lineage, not seed sets, so a churned blacklist *must* force the
    /// next recluster to run from scratch or the delta replay would keep
    /// propagating labels from seeds that no longer exist.
    blacklist: Mutex<Vec<u32>>,
    verdicts: EpochCell<VerdictSnapshot>,
    telemetry: Arc<Telemetry>,
    batches_applied: AtomicU64,
    /// Watermark of the window's exclusive end day, mirrored out of the
    /// lock so the ingest gate can run its day-regression check without
    /// contending with apply.
    window_end: Arc<AtomicU32>,
    health: Arc<HealthMonitor>,
    /// Optional span recorder. Serve stages record wall-clock spans
    /// relative to `trace_epoch`; the recluster LP run nests its modeled
    /// engine spans under the recluster span via the same handle.
    tracer: Option<Tracer>,
    trace_epoch: Instant,
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<FaultPlan>>,
}

impl ServiceCore {
    /// A core with an empty window and the given blacklist seeds.
    pub fn new(cfg: ServeConfig, blacklist: Vec<u32>) -> Self {
        let window = IncrementalWindow::empty(cfg.window_days);
        Self::from_state(cfg, blacklist, window, 0, 0, &[])
    }

    /// A core resuming from a decoded checkpoint: the window, batch
    /// clock, snapshot epoch, and monotonic telemetry counters all
    /// continue where the checkpoint left them. Fails if the checkpoint
    /// violates window invariants or disagrees with `cfg.window_days`.
    pub fn restore(
        cfg: ServeConfig,
        blacklist: Vec<u32>,
        ckpt: &WindowCheckpoint,
    ) -> Result<Self, CheckpointError> {
        if ckpt.days != cfg.window_days {
            return Err(CheckpointError::Invalid(
                "checkpoint window length disagrees with the configuration",
            ));
        }
        let window = ckpt.restore_window()?;
        let core = Self::from_state(
            cfg,
            blacklist,
            window,
            ckpt.batches_applied,
            ckpt.snapshot_epoch,
            &ckpt.counters,
        );
        // Rebuild verdicts from the restored window before anything is
        // served: staleness reads 0 and queries see real answers, not the
        // default-empty snapshot.
        core.recluster_now();
        Ok(core)
    }

    fn from_state(
        cfg: ServeConfig,
        blacklist: Vec<u32>,
        window: IncrementalWindow,
        batches_applied: u64,
        snapshot_epoch: u64,
        counters: &[u64],
    ) -> Self {
        let telemetry = Arc::new(Telemetry::new());
        telemetry.restore_counters(counters);
        let health = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: cfg.shedding_after_crashes,
            down_after: cfg.down_after_crashes,
        }));
        let initial = VerdictSnapshot {
            as_of_batch: batches_applied,
            ..VerdictSnapshot::default()
        };
        Self {
            window_end: Arc::new(AtomicU32::new(window.end())),
            window: Mutex::new(window),
            recluster: Mutex::new(WarmState::default()),
            cfg,
            blacklist: Mutex::new(blacklist),
            verdicts: EpochCell::with_epoch(initial, snapshot_epoch),
            telemetry,
            batches_applied: AtomicU64::new(batches_applied),
            health,
            tracer: None,
            trace_epoch: Instant::now(),
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Attaches a span recorder: every serve stage (ingest → batch →
    /// apply → recluster → swap → checkpoint) records wall-clock spans,
    /// and recluster LP runs record their engine/kernel spans through the
    /// same handle. Without one, nothing is recorded and behavior is
    /// unchanged.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self.trace_epoch = Instant::now();
        self
    }

    /// The attached span recorder, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Seconds since the tracer was attached (span timestamps).
    fn trace_now(&self) -> f64 {
        self.trace_epoch.elapsed().as_secs_f64()
    }

    /// Attaches a fault plan; every hook in the worker loops consults it.
    #[cfg(feature = "fault-injection")]
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    #[cfg(feature = "fault-injection")]
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The telemetry block.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The health monitor (crash streaks and the state machine).
    pub fn health_monitor(&self) -> &Arc<HealthMonitor> {
        &self.health
    }

    /// One consistent health observation: the crash-driven state, raised
    /// to at least [`Degraded`](HealthState::Degraded) while the served
    /// snapshot is staler than `max_staleness_batches`, plus the numbers
    /// needed to interpret it (staleness, streak, last panic).
    pub fn health(&self) -> HealthReport {
        let staleness = self.staleness_batches();
        let mut state = self.health.state();
        if staleness >= self.cfg.max_staleness_batches {
            state = state.max(HealthState::Degraded);
        }
        if self.health.burst_overlay() {
            // A detected burst flood degrades, never downs: the service
            // is serving and draining, just shedding loudly.
            state = state.max(HealthState::Degraded);
        }
        HealthReport {
            state,
            consecutive_crashes: self.health.consecutive_crashes(),
            staleness_batches: staleness,
            snapshot_epoch: self.verdicts.epoch(),
            last_panic: self.health.last_panic(),
            engine_tier: self.health.engine_tier(),
        }
    }

    /// The current blacklist seeds (sorted, deduplicated).
    pub fn blacklist(&self) -> Vec<u32> {
        self.blacklist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Applies blacklist churn: `add` entries are inserted, `remove`
    /// entries retracted (label noise being withdrawn). Returns whether
    /// the effective seed set changed; when it did, the warm-start memo
    /// is reset — the recluster-staleness guard — so the *next* recluster
    /// runs from scratch against the new seeds instead of incrementally
    /// replaying labels a retracted seed already propagated. Counted in
    /// `blacklist_revisions`.
    pub fn update_blacklist(&self, add: &[u32], remove: &[u32]) -> bool {
        let changed = {
            let mut bl = self.blacklist.lock().unwrap_or_else(|e| e.into_inner());
            let before = bl.clone();
            bl.extend_from_slice(add);
            bl.sort_unstable();
            bl.dedup();
            bl.retain(|u| !remove.contains(u));
            *bl != before
        };
        if changed {
            self.telemetry
                .blacklist_revisions
                .fetch_add(1, Ordering::Relaxed);
            // The memo's coverage check compares window lineage only; a
            // churned seed set silently invalidates it, so drop it here.
            self.recluster
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .reset();
        }
        changed
    }

    /// Micro-batches applied so far.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied.load(Ordering::Relaxed)
    }

    /// Batches applied since the current snapshot was materialized — the
    /// live staleness, bounded by `recluster_every_batches` plus one
    /// in-flight recluster whenever the recluster thread keeps up.
    pub fn staleness_batches(&self) -> u64 {
        self.batches_applied()
            .saturating_sub(self.verdicts.load().as_of_batch)
    }

    /// Applies one stamped micro-batch to the window and records ingest
    /// telemetry. Invalid transactions that slipped past the gate (or
    /// were corrupted after it) are shed here — counted as
    /// `rejected_invalid` — instead of being allowed to corrupt the
    /// window or panic the apply. Returns the new applied-batch count.
    pub fn apply(&self, batch: &[Submitted]) -> u64 {
        if batch.is_empty() {
            return self.batches_applied();
        }
        if let Some(t) = &self.tracer {
            t.instant(Category::Serve, "ingest", Clock::Wall, self.trace_now());
            t.begin_arg(
                Category::Serve,
                "apply",
                Clock::Wall,
                self.trace_now(),
                batch.len() as u64,
            );
        }
        let mut invalid = 0u64;
        {
            let mut w = self.window.lock().unwrap_or_else(|e| e.into_inner());
            #[cfg(feature = "fault-injection")]
            if let Some(plan) = &self.faults {
                // Fires while the window mutex is held: poisons the lock.
                plan.maybe_panic_in_apply(self.batches_applied());
            }
            // Validate against the *running* end: apply_batch's
            // invariant is t.day + 1 >= end with end advancing per
            // transaction, so the filter must advance the same way.
            let mut end = w.end();
            let mut txs: Vec<Transaction> = Vec::with_capacity(batch.len());
            for s in batch {
                let t = s.tx;
                if t.amount.is_finite() && t.day + 1 >= end {
                    end = end.max(t.day + 1);
                    txs.push(t);
                } else {
                    invalid += 1;
                }
            }
            w.apply_batch(&txs);
            self.window_end.store(w.end(), Ordering::Release);
        }
        if invalid > 0 {
            self.telemetry
                .rejected_invalid
                .fetch_add(invalid, Ordering::Relaxed);
        }
        let applied = Instant::now();
        for s in batch {
            let lag = applied.duration_since(s.at).as_nanos() as u64;
            self.telemetry.ingest_lag.record(lag);
        }
        self.telemetry.batch_size.record(batch.len() as u64);
        self.telemetry.batches.fetch_add(1, Ordering::Relaxed);
        let applied_count = self.batches_applied.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(t) = &self.tracer {
            t.end(self.trace_now());
        }
        applied_count
    }

    /// Convenience for synchronous callers: stamps and applies raw
    /// transactions as one micro-batch.
    pub fn apply_transactions(&self, txs: &[Transaction]) -> u64 {
        let now = Instant::now();
        let batch: Vec<Submitted> = txs.iter().map(|&tx| Submitted { tx, at: now }).collect();
        self.apply(&batch)
    }

    /// Materializes the current window (with its delta), reclusters it —
    /// incrementally when the previous run's memo covers the delta, from
    /// scratch otherwise or every [`ServeConfig::full_recluster_every`]
    /// incremental runs — and publishes the verdict snapshot. The window
    /// lock is held only for the materialization (a replay of the live
    /// log); LP and scoring run on the private copy. Returns what ran:
    /// the mode, the wall seconds, and the frontier the LP consumed.
    pub fn recluster_now(&self) -> ReclusterRun {
        let started = Instant::now();
        if let Some(t) = &self.tracer {
            t.begin(Category::Serve, "recluster", Clock::Wall, self.trace_now());
        }
        // The warm-start lock is held across the whole run: concurrent
        // reclusters serialize, so each consumes the memo of the run
        // directly before it.
        let mut st = self.recluster.lock().unwrap_or_else(|e| e.into_inner());
        let (workload, delta, window_end, as_of) = {
            let mut w = self.window.lock().unwrap_or_else(|e| e.into_inner());
            let (workload, delta) = w.materialize_delta();
            (
                workload,
                delta,
                w.end(),
                self.batches_applied.load(Ordering::Relaxed),
            )
        };
        let mut mode = ReclusterMode::Full;
        let mut frontier = 0usize;
        let snapshot = if workload.graph.num_vertices() == 0 {
            // Nothing to cluster yet: publish the empty scoring. No LP
            // ran, so no memo and no incremental/full decision recorded.
            st.reset();
            VerdictSnapshot {
                window_end,
                as_of_batch: as_of,
                ..VerdictSnapshot::default()
            }
        } else {
            let blacklist = self.blacklist();
            let outcome = st.run(
                &workload,
                &blacklist,
                &self.cfg,
                &delta,
                as_of,
                window_end,
                self.tracer.as_ref(),
            );
            absorb_outcome(&self.telemetry, &self.health, &outcome);
            mode = outcome.mode;
            frontier = outcome.frontier;
            outcome.snapshot
        };
        if let Some(t) = &self.tracer {
            t.begin(Category::Serve, "swap", Clock::Wall, self.trace_now());
        }
        self.verdicts.publish(snapshot);
        if let Some(t) = &self.tracer {
            t.end(self.trace_now()); // swap
        }
        self.telemetry.reclusters.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .recluster_wall
            .record(started.elapsed().as_nanos() as u64);
        if let Some(t) = &self.tracer {
            t.end(self.trace_now()); // recluster
        }
        ReclusterRun {
            mode,
            wall_seconds: started.elapsed().as_secs_f64(),
            frontier,
        }
    }

    /// Persists the current window (plus batch clock, snapshot epoch,
    /// and monotonic counters) to `path` via an atomic temp-file write.
    /// Failures are counted (`checkpoint_failures`) and returned; the
    /// previous checkpoint on disk is never damaged by a failed write.
    pub fn checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        if let Some(t) = &self.tracer {
            t.begin(Category::Serve, "checkpoint", Clock::Wall, self.trace_now());
        }
        let ckpt = {
            let w = self.window.lock().unwrap_or_else(|e| e.into_inner());
            WindowCheckpoint::capture(
                &w,
                self.batches_applied.load(Ordering::Relaxed),
                self.verdicts.epoch(),
                self.telemetry.counters_snapshot(),
            )
        };
        // The write itself runs outside the window lock.
        let result = match ckpt.write_atomic(path) {
            Ok(()) => {
                self.telemetry
                    .checkpoints_written
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.telemetry
                    .checkpoint_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        };
        if let Some(t) = &self.tracer {
            let now = self.trace_now();
            if result.is_ok() {
                t.end(now);
            } else {
                t.end_err(now);
            }
        }
        result
    }

    /// The freshest published snapshot.
    pub fn snapshot(&self) -> Arc<VerdictSnapshot> {
        self.verdicts.load()
    }

    /// Snapshots published so far.
    pub fn epoch(&self) -> u64 {
        self.verdicts.epoch()
    }

    fn restart_policy(&self) -> RestartPolicy {
        RestartPolicy {
            backoff_base: self.cfg.restart_backoff,
            backoff_cap: self.cfg.restart_backoff_cap,
        }
    }
}

/// A cloneable, read-only scoring handle: the in-process query
/// front-end. Lookups are two binary searches against an immutable
/// snapshot — they never contend with ingest or reclustering beyond a
/// pointer-clone, and they keep answering (from the last good snapshot)
/// whatever state the write side is in.
#[derive(Clone)]
pub struct QueryHandle {
    core: Arc<ServiceCore>,
}

impl QueryHandle {
    /// The current health observation (state, staleness, crash streak).
    pub fn health(&self) -> HealthReport {
        self.core.health()
    }
}

impl FraudScorer for QueryHandle {
    fn score(&self, user: u32) -> Verdict {
        let t0 = Instant::now();
        let v = self.core.verdicts.load().verdict(user);
        self.core
            .telemetry
            .query_latency
            .record(t0.elapsed().as_nanos() as u64);
        self.core.telemetry.queries.fetch_add(1, Ordering::Relaxed);
        v
    }

    fn snapshot(&self) -> Arc<VerdictSnapshot> {
        self.core.verdicts.load()
    }
}

/// How [`FraudService::shutdown`] went: the core for final inspection
/// plus each supervised worker's outcome. Replaces the PR-1 behaviour of
/// re-panicking on `join()` when a worker had died.
#[derive(Clone)]
pub struct ShutdownReport {
    /// The service core (snapshots, telemetry, health) after the final
    /// recluster.
    pub core: Arc<ServiceCore>,
    /// How the batcher worker ended.
    pub batcher: WorkerOutcome,
    /// How the recluster worker ended.
    pub recluster: WorkerOutcome,
    /// Health state at shutdown (staleness overlay included).
    pub state: HealthState,
}

impl ShutdownReport {
    /// Whether both workers exited cleanly without ever panicking.
    pub fn clean(&self) -> bool {
        self.batcher == WorkerOutcome::Clean { panics: 0 }
            && self.recluster == WorkerOutcome::Clean { panics: 0 }
    }
}

/// The threaded always-on service.
pub struct FraudService {
    core: Arc<ServiceCore>,
    gate: IngestGate,
    recluster_tx: Sender<()>,
    batcher: Option<JoinHandle<()>>,
    recluster_worker: Option<JoinHandle<()>>,
    batcher_status: Arc<WorkerStatus>,
    recluster_status: Arc<WorkerStatus>,
}

impl FraudService {
    /// Starts the service: spawns the supervised batcher and recluster
    /// workers.
    pub fn start(cfg: ServeConfig, blacklist: Vec<u32>) -> Self {
        Self::start_on(Arc::new(ServiceCore::new(cfg, blacklist)))
    }

    /// Starts the service with a fault plan attached (feature
    /// `fault-injection`): every hook in the worker loops consults the
    /// plan, so the scheduled faults fire at their batch/recluster
    /// indices.
    #[cfg(feature = "fault-injection")]
    pub fn start_with_faults(cfg: ServeConfig, blacklist: Vec<u32>, plan: Arc<FaultPlan>) -> Self {
        Self::start_on(Arc::new(ServiceCore::new(cfg, blacklist).with_faults(plan)))
    }

    /// Resumes a service from the checkpoint at `path`: the window,
    /// batch clock, snapshot epoch, and monotonic counters continue
    /// where the checkpoint left them, verdicts are rebuilt before the
    /// first query, and ingest picks up at the restored window end.
    /// The configuration and blacklist are not checkpointed (they are
    /// deployment inputs, not stream state) and must be supplied again.
    pub fn recover(
        cfg: ServeConfig,
        blacklist: Vec<u32>,
        path: &Path,
    ) -> Result<Self, CheckpointError> {
        let ckpt = WindowCheckpoint::read(path)?;
        let core = ServiceCore::restore(cfg, blacklist, &ckpt)?;
        Ok(Self::start_on(Arc::new(core)))
    }

    fn start_on(core: Arc<ServiceCore>) -> Self {
        let cfg = core.cfg.clone();
        let burst =
            BurstState::from_config(&cfg, Arc::clone(&core.health), Arc::clone(core.telemetry()));
        let (gate, batch_rx) = ingest_pair(
            cfg.queue_capacity,
            cfg.shed_policy,
            cfg.window_days,
            Arc::clone(&core.window_end),
            Arc::clone(&core.health),
            Arc::clone(core.telemetry()),
            burst.clone(),
        );
        // Capacity 1: at most one recluster pending beyond the one in
        // flight; further requests coalesce.
        let (recluster_tx, recluster_rx): (Sender<()>, Receiver<()>) = bounded(1);

        let (batcher, batcher_status) = {
            let core = Arc::clone(&core);
            let recluster_tx = recluster_tx.clone();
            let policy = core.restart_policy();
            let health = Arc::clone(&core.health);
            let telemetry = Arc::clone(core.telemetry());
            supervise("batcher", health, telemetry, policy, move || {
                let batcher = Batcher::new(batch_rx.clone(), cfg.max_batch, cfg.batch_budget)
                    .with_burst(burst.clone());
                batch_loop(&core, &batcher, &recluster_tx)
            })
        };
        let (recluster_worker, recluster_status) = {
            let core = Arc::clone(&core);
            let policy = core.restart_policy();
            let health = Arc::clone(&core.health);
            let telemetry = Arc::clone(core.telemetry());
            supervise("recluster", health, telemetry, policy, move || {
                recluster_loop(&core, &recluster_rx)
            })
        };
        Self {
            core,
            gate,
            recluster_tx,
            batcher: Some(batcher),
            recluster_worker: Some(recluster_worker),
            batcher_status,
            recluster_status,
        }
    }

    /// A producer-side submission gate (cloneable).
    pub fn gate(&self) -> IngestGate {
        self.gate.clone()
    }

    /// Submits one transaction through the service's own gate.
    pub fn submit(&self, tx: Transaction) -> Result<(), Transaction> {
        self.gate.submit(tx)
    }

    /// A query handle (cloneable).
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// The synchronous core (telemetry, staleness, snapshots).
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// The current health observation.
    pub fn health(&self) -> HealthReport {
        self.core.health()
    }

    /// Runs a recluster on the caller's thread right now and reports
    /// what ran — the same trigger name and return type as
    /// [`ServiceCore::recluster_now`] and the fleet's
    /// [`FleetCore::recluster_now`](crate::router::FleetCore::recluster_now).
    /// The warm-start lock serializes this with the recluster worker, so
    /// a forced run never races a scheduled one.
    pub fn recluster_now(&self) -> ReclusterRun {
        self.core.recluster_now()
    }

    /// Stops the service: closes the ingest queue, lets the batcher
    /// drain what is already queued, runs one final recluster so the
    /// last batches are scored, and joins both supervisors. Worker
    /// panics along the way are *reported*, not re-thrown — a service
    /// that lost a worker still shuts down in order. Any gates cloned
    /// out of the service must be dropped first, or the queue never
    /// reads as closed.
    pub fn shutdown(mut self) -> ShutdownReport {
        drop(self.gate);
        if let Some(h) = self.batcher.take() {
            h.join().expect("supervisor threads do not panic");
        }
        drop(self.recluster_tx);
        if let Some(h) = self.recluster_worker.take() {
            h.join().expect("supervisor threads do not panic");
        }
        self.core.recluster_now();
        // A final checkpoint so a clean shutdown leaves the freshest
        // possible resume point.
        if let Some(path) = &self.core.cfg.checkpoint_path {
            let _ = self.core.checkpoint(path);
        }
        ShutdownReport {
            state: self.core.health().state,
            batcher: self.batcher_status.outcome(),
            recluster: self.recluster_status.outcome(),
            core: Arc::clone(&self.core),
        }
    }
}

fn request_recluster(core: &ServiceCore, recluster_tx: &Sender<()>) {
    match recluster_tx.try_send(()) {
        Ok(()) | Err(TrySendError::Disconnected(())) => {}
        Err(TrySendError::Full(())) => {
            core.telemetry
                .reclusters_coalesced
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn batch_loop(core: &ServiceCore, batcher: &Batcher, recluster_tx: &Sender<()>) -> WorkerExit {
    loop {
        // Staleness gate: if verdicts have fallen max_staleness_batches
        // behind the window, stop applying until the recluster thread
        // catches up. The queue keeps absorbing traffic meanwhile and
        // sheds (counted) once full — bounded staleness turns overload
        // into backpressure instead of ever-staler answers. A Down
        // service can never catch up, so the wait aborts instead of
        // spinning forever.
        while core.staleness_batches() >= core.cfg.max_staleness_batches {
            if core.health.is_down() {
                return WorkerExit::Finished;
            }
            request_recluster(core, recluster_tx);
            thread::sleep(std::time::Duration::from_micros(200));
        }
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = core.faults() {
            // Fires *before* the batch is drained: the queued
            // transactions survive the panic and the restarted worker
            // applies them — recovery is lossless by construction.
            plan.maybe_panic_batcher(core.batches_applied());
        }
        let next = {
            // The batch span covers the drain wait: budget-bounded queue
            // reads until the micro-batch fills or times out.
            if let Some(t) = core.tracer() {
                t.begin(Category::Serve, "batch", Clock::Wall, core.trace_now());
            }
            let next = batcher.next_batch();
            if let Some(t) = core.tracer() {
                t.end(core.trace_now());
            }
            next
        };
        match next {
            Err(Closed) => return WorkerExit::Finished,
            Ok(batch) => {
                if batch.is_empty() {
                    continue; // idle tick
                }
                #[cfg(feature = "fault-injection")]
                let batch = corrupt_if_due(core, batch);
                let applied = core.apply(&batch);
                core.health.record_progress("batcher");
                if applied.is_multiple_of(core.cfg.recluster_every_batches) {
                    request_recluster(core, recluster_tx);
                }
                if let Some(path) = &core.cfg.checkpoint_path {
                    if applied.is_multiple_of(core.cfg.checkpoint_every_batches) {
                        #[cfg(feature = "fault-injection")]
                        if let Some(plan) = core.faults() {
                            if plan.checkpoint_fail_due(applied) {
                                glp_fraud::checkpoint::faults::fail_next_writes(1);
                            }
                        }
                        // Failure is counted inside and does not stop
                        // the service; the previous checkpoint survives.
                        let _ = core.checkpoint(path);
                    }
                }
            }
        }
    }
}

#[cfg(feature = "fault-injection")]
fn corrupt_if_due(core: &ServiceCore, mut batch: Vec<Submitted>) -> Vec<Submitted> {
    if let Some(plan) = core.faults() {
        if plan.corrupt_due(core.batches_applied()) {
            // A corrupt record materializing inside the pipeline, after
            // the gate: the apply-side validation must shed it.
            batch[0].tx.amount = f32::NAN;
        }
    }
    batch
}

fn recluster_loop(core: &ServiceCore, recluster_rx: &Receiver<()>) -> WorkerExit {
    while recluster_rx.recv().is_ok() {
        if core.health.is_down() {
            return WorkerExit::Finished;
        }
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = core.faults() {
            let next = core.telemetry.reclusters.load(Ordering::Relaxed);
            if let Some(millis) = plan.stall_due(next) {
                // The stall is injected at the device layer: the whole
                // stack above gpusim experiences a slow card.
                glp_gpusim::faults::inject_kernel_stall(1, millis * 1_000);
            }
            plan.maybe_panic_recluster(next);
        }
        core.recluster_now();
        core.health.record_progress("recluster");
    }
    WorkerExit::Finished
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShedPolicy;
    use glp_fraud::{TxConfig, TxStream};
    use std::time::Duration;

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 1_000,
            num_items: 400,
            days: 20,
            tx_per_day: 600,
            num_rings: 3,
            ring_size: 10,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.25,
            ..Default::default()
        })
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            queue_capacity: 8_192,
            max_batch: 256,
            batch_budget: Duration::from_millis(2),
            shed_policy: ShedPolicy::DropOldest,
            recluster_every_batches: 4,
            engine_shards: 2,
            ..ServeConfig::default()
        }
        .with_window_days(10)
    }

    #[test]
    fn core_scores_like_the_offline_pipeline_would() {
        let s = stream();
        let core = ServiceCore::new(cfg(), s.blacklist.clone());
        for day in 0..s.config.days {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            core.apply_transactions(&txs);
        }
        core.recluster_now();
        let snap = core.snapshot();
        assert_eq!(snap.window_end, s.config.days);
        assert!(snap.num_flagged() > 0, "rings should be flagged");
        assert_eq!(core.epoch(), 1);
        assert_eq!(core.staleness_batches(), 0);
        let h = core.health();
        assert_eq!(h.state, HealthState::Healthy);
        assert_eq!(h.consecutive_crashes, 0);
    }

    #[test]
    fn threaded_service_end_to_end() {
        let s = stream();
        let service = FraudService::start(cfg(), s.blacklist.clone());
        let handle = service.handle();
        for t in s.window(0, s.config.days) {
            service.submit(*t).expect("service accepts while running");
        }
        let report = service.shutdown();
        assert!(report.clean(), "no faults injected: clean outcomes");
        assert_eq!(report.state, HealthState::Healthy);
        let core = report.core;
        // Shutdown drains the queue and reclusters once more, so every
        // submitted transaction is scored.
        let snap = core.snapshot();
        assert_eq!(snap.window_end, s.config.days);
        assert!(snap.num_flagged() > 0);
        let flagged_user = snap.flagged[0].0;
        assert!(matches!(
            handle.score(flagged_user),
            Verdict::Flagged { .. }
        ));
        let t = core.telemetry();
        assert!(t.batches.load(Ordering::Relaxed) > 0);
        assert!(t.ingest_lag.count() > 0);
        assert_eq!(
            t.ingest_lag.count(),
            t.ingested.load(Ordering::Relaxed) - t.shed_total()
        );
        assert_eq!(t.worker_panics.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn invalid_submissions_are_shed_not_applied() {
        let s = stream();
        let service = FraudService::start(cfg(), s.blacklist.clone());
        let valid: Vec<Transaction> = s.window(0, 3).copied().collect();
        for t in &valid {
            service.submit(*t).expect("valid traffic flows");
        }
        // Gate-level garbage: non-finite amounts.
        let nan = Transaction {
            buyer: 1,
            item: 2,
            day: 2,
            amount: f32::NAN,
        };
        let inf = Transaction {
            buyer: 9,
            item: 4,
            day: 2,
            amount: f32::NEG_INFINITY,
        };
        assert!(service.submit(nan).is_err());
        assert!(service.submit(inf).is_err());
        let report = service.shutdown();
        let t = report.core.telemetry();
        assert_eq!(t.rejected_invalid.load(Ordering::Relaxed), 2);
        assert_eq!(t.ingested.load(Ordering::Relaxed), valid.len() as u64);
        // The window absorbed exactly the valid traffic.
        assert_eq!(report.core.snapshot().window_end, 3);
    }

    #[test]
    fn day_regression_is_filtered_at_apply() {
        // A day regression *within* the gate's tolerance must be shed by
        // the authoritative apply-side filter rather than panicking the
        // window's apply_batch.
        let s = stream();
        let core = ServiceCore::new(cfg(), s.blacklist.clone());
        let day5: Vec<Transaction> = s.window(5, 6).copied().collect();
        core.apply_transactions(&day5); // window end = 6
        let stale = Transaction {
            buyer: 1,
            item: 2,
            day: 2, // closed day, still inside the 10-day window
            amount: 1.0,
        };
        core.apply_transactions(&[stale]);
        assert_eq!(core.telemetry().rejected_invalid.load(Ordering::Relaxed), 1);
        assert_eq!(core.batches_applied(), 2, "batch still counted");
        // Mixed batch: the regression is dropped, the rest applies.
        let day6: Vec<Transaction> = s.window(6, 7).copied().collect();
        let mut mixed = vec![stale];
        mixed.extend_from_slice(&day6);
        core.apply_transactions(&mixed);
        assert_eq!(core.telemetry().rejected_invalid.load(Ordering::Relaxed), 2);
        core.recluster_now();
        assert_eq!(core.snapshot().window_end, 7);
    }

    #[test]
    fn reject_new_backpressure_is_counted_and_nonblocking() {
        // A tiny queue and a batcher that cannot keep up: submissions
        // must return (not block) and shed must be counted.
        let s = stream();
        let mut c = cfg();
        c.queue_capacity = 64;
        c.shed_policy = ShedPolicy::RejectNew;
        let service = FraudService::start(c, s.blacklist.clone());
        let mut rejected = 0u64;
        for t in s.window(0, s.config.days) {
            if service.submit(*t).is_err() {
                rejected += 1;
            }
        }
        let core = service.shutdown().core;
        let t = core.telemetry();
        assert_eq!(t.shed_rejected_new.load(Ordering::Relaxed), rejected);
        assert_eq!(t.shed_dropped_oldest.load(Ordering::Relaxed), 0);
        // Accepted = submitted - rejected, and all accepted were applied.
        assert_eq!(
            t.ingested.load(Ordering::Relaxed) + rejected,
            s.window(0, s.config.days).count() as u64
        );
        assert_eq!(t.ingest_lag.count(), t.ingested.load(Ordering::Relaxed));
    }

    #[test]
    fn staleness_gate_bounds_staleness_and_sheds_under_overload() {
        // Cadence of 1 and a staleness bound of 1: every batch must be
        // reclustered before the next applies. The batcher is therefore
        // slower than the producer, the tiny queue fills, and overload
        // surfaces as counted rejections — not as stale verdicts.
        let s = stream();
        let mut c = cfg();
        c.queue_capacity = 64;
        c.max_batch = 64;
        c.shed_policy = ShedPolicy::RejectNew;
        c.recluster_every_batches = 1;
        c.max_staleness_batches = 1;
        let service = FraudService::start(c, s.blacklist.clone());
        let mut rejected = 0u64;
        for t in s.window(0, s.config.days) {
            if service.submit(*t).is_err() {
                rejected += 1;
            }
        }
        let core = service.shutdown().core;
        let t = core.telemetry();
        assert!(rejected > 0, "overload should shed");
        assert_eq!(t.shed_rejected_new.load(Ordering::Relaxed), rejected);
        assert!(t.reclusters.load(Ordering::Relaxed) > 0);
        assert_eq!(core.staleness_batches(), 0, "shutdown reclusters last");
    }

    #[test]
    fn queries_never_block_on_reclustering() {
        let s = stream();
        let core = ServiceCore::new(cfg(), s.blacklist.clone());
        let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
        core.apply_transactions(&all);
        core.recluster_now();
        let core = Arc::new(core);
        let handle = QueryHandle {
            core: Arc::clone(&core),
        };
        // Hammer queries from this thread while a recluster runs in
        // another; every query must complete well inside the recluster's
        // wall time.
        let reclusterer = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                for _ in 0..3 {
                    core.recluster_now();
                }
            })
        };
        for i in 0..50_000u32 {
            let _ = handle.score(i % 1_000);
        }
        reclusterer.join().unwrap();
        let t = core.telemetry();
        assert_eq!(t.queries.load(Ordering::Relaxed), 50_000);
        // p99 query latency stays microseconds even with reclusters
        // running: pointer-clone + two binary searches.
        let p99 = t.query_latency.quantile(0.99);
        assert!(p99 < 1_000_000, "p99 query latency {p99} ns");
    }
}
