//! Service configuration.

use glp_core::FrontierMode;
use glp_fraud::PipelineConfig;
use std::path::PathBuf;
use std::time::Duration;

/// What to do when a transaction arrives and the ingest queue is full.
///
/// Shedding is always **counted** (see
/// [`Telemetry`](crate::telemetry::Telemetry)); the service never drops
/// load silently and never blocks the producer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Evict the oldest queued transaction to make room for the new one.
    /// Keeps the window maximally fresh under overload at the cost of a
    /// gap in the oldest unprocessed data.
    DropOldest,
    /// Refuse the new transaction and tell the caller. Keeps the queue's
    /// contents intact; the producer decides whether to retry.
    RejectNew,
}

/// Tuning knobs for [`FraudService`](crate::FraudService).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bound of the ingest queue (transactions). When full, the
    /// [`ShedPolicy`] applies — this is the service's backpressure.
    pub queue_capacity: usize,
    /// Micro-batch size cap: the ingest stage drains at most this many
    /// transactions per batch.
    pub max_batch: usize,
    /// Micro-batch time budget: after the first transaction of a batch
    /// arrives, the batcher waits at most this long for more before
    /// applying what it has.
    pub batch_budget: Duration,
    /// Overload behaviour of the ingest queue.
    pub shed_policy: ShedPolicy,
    /// Sliding-window length in days (mirrors
    /// [`PipelineConfig::window_days`], which is kept in sync).
    pub window_days: u32,
    /// Recluster after this many applied batches (the freshness cadence).
    pub recluster_every_batches: u64,
    /// Hard staleness bound, in batches: when the published snapshot
    /// falls this far behind the window, the batcher stops applying and
    /// waits for the recluster to catch up. The queue then absorbs the
    /// offered load until the [`ShedPolicy`] kicks in — overload turns
    /// into *counted shedding with fresh-enough verdicts*, never into
    /// unboundedly stale verdicts.
    pub max_staleness_batches: u64,
    /// LP + scoring parameters, reusing the offline pipeline's stage 2–3
    /// configuration verbatim so online and offline verdicts agree.
    pub pipeline: PipelineConfig,
    /// Harness OS threads per LP kernel (0 = auto). Engine results are
    /// bit-deterministic across shard counts, which the determinism test
    /// pins end to end.
    pub engine_shards: usize,
    /// Scheduling mode of the recluster LP runs — every
    /// [`ReclusterRequest`](crate::recluster::ReclusterRequest) inherits it
    /// transparently. The default ([`FrontierMode::Auto`]) engages
    /// direction-optimized active-frontier execution (per-iteration
    /// push/pull switching); `Push`/`Pull` force one rebuild direction —
    /// the weighted pipeline program declares sparse activation, so
    /// converging reclusters do sharply less work per iteration while
    /// producing bit-identical verdicts under every mode (pinned by the
    /// determinism and delta-identity tests).
    pub frontier: FrontierMode,
    /// Consecutive worker crashes at which the service enters
    /// [`HealthState::Shedding`](crate::HealthState::Shedding) (the
    /// ingest gate refuses new transactions, counted, while supervision
    /// keeps restarting). Any successful batch or recluster resets the
    /// streak.
    pub shedding_after_crashes: u32,
    /// Consecutive worker crashes at which supervision gives up and the
    /// service goes [`HealthState::Down`](crate::HealthState::Down)
    /// (queries keep answering from the last good snapshot; ingest stays
    /// closed). Must exceed `shedding_after_crashes`.
    pub down_after_crashes: u32,
    /// First-restart backoff after a caught worker panic; doubles per
    /// consecutive crash.
    pub restart_backoff: Duration,
    /// Ceiling on the restart backoff.
    pub restart_backoff_cap: Duration,
    /// Where to write periodic window checkpoints (None = checkpointing
    /// off). See [`FraudService::recover`](crate::FraudService::recover).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint after every this many applied batches.
    pub checkpoint_every_batches: u64,
    /// Largest delta frontier an incremental recluster will accept, as a
    /// fraction of the window graph's vertices. A delta that touched
    /// more than `delta_fraction_max * |V|` vertices falls back to a
    /// full recluster — past that point the replay recomputes most of
    /// the graph anyway, so from-scratch LP (with its engine ladder and
    /// frontier scheduling) is the better buy. `0.0` disables
    /// incremental reclustering outright.
    pub delta_fraction_max: f64,
    /// Force a from-scratch recluster after this many consecutive
    /// incremental ones (0 = never force). Incremental runs are pinned
    /// byte-identical to full ones, so this bounds *memo lineage length*
    /// — the number of replays any published snapshot's provenance
    /// chains through — not correctness drift.
    pub full_recluster_every: u64,
    /// Burst-detector evaluation window: the shed rate is evaluated once
    /// per this many gate submissions (accepted or shed). 0 disables
    /// burst detection.
    pub burst_window: u64,
    /// Shed rate (sheds / submissions over one evaluation window) at or
    /// above which the detector enters *burst* mode: batching tightens
    /// by [`Self::burst_batch_divisor`] and the health overlay reports
    /// at least [`Degraded`](crate::HealthState::Degraded).
    pub burst_shed_threshold: f64,
    /// Shed rate below which an evaluation window counts as *calm*.
    /// Strictly below [`Self::burst_shed_threshold`] — the gap is the
    /// hysteresis band that stops the detector flapping on a load
    /// hovering at the threshold.
    pub burst_recover_threshold: f64,
    /// Consecutive calm windows required to leave burst mode.
    pub burst_recovery_windows: u32,
    /// How much batching tightens during a burst: the effective batch
    /// size cap and time budget are divided by this (floor 1
    /// transaction / 1 ms), so the window drains in smaller, faster
    /// batches while the flood lasts. Admission is *not* affected —
    /// accepted-transaction sequences stay deterministic.
    pub burst_batch_divisor: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let pipeline = PipelineConfig::default();
        Self {
            queue_capacity: 4_096,
            max_batch: 512,
            batch_budget: Duration::from_millis(5),
            shed_policy: ShedPolicy::DropOldest,
            window_days: pipeline.window_days,
            recluster_every_batches: 8,
            max_staleness_batches: 32,
            pipeline,
            engine_shards: 0,
            frontier: FrontierMode::Auto,
            shedding_after_crashes: 3,
            down_after_crashes: 6,
            restart_backoff: Duration::from_millis(20),
            restart_backoff_cap: Duration::from_secs(2),
            checkpoint_path: None,
            checkpoint_every_batches: 64,
            delta_fraction_max: 0.25,
            full_recluster_every: 32,
            burst_window: 512,
            burst_shed_threshold: 0.10,
            burst_recover_threshold: 0.02,
            burst_recovery_windows: 2,
            burst_batch_divisor: 4,
        }
    }
}

impl ServeConfig {
    /// Sets the window length on both the service and the embedded
    /// pipeline configuration (they must agree).
    pub fn with_window_days(mut self, days: u32) -> Self {
        self.window_days = days;
        self.pipeline.window_days = days;
        self
    }
}

/// Tuning knobs for the sharded fleet
/// ([`FleetCore`](crate::router::FleetCore) /
/// [`ShardRouter`](crate::router::ShardRouter)).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Per-shard configuration, applied to every shard core. The
    /// `checkpoint_path`, if set, is the fleet's *base* path — each
    /// shard writes `<base>.shard<i>` (see
    /// [`Self::shard_checkpoint_path`]).
    pub shard: ServeConfig,
    /// Number of shard cores.
    pub shards: usize,
    /// Run the cross-shard label exchange after this many fleet batches
    /// (the boundary-freshness cadence; local per-shard reclusters run
    /// at the shard's own `recluster_every_batches`).
    pub exchange_every_batches: u64,
    /// Directory of the fleet's write-ahead batch journal (None =
    /// journaling off). With a journal, every validated batch is
    /// persisted *before* fan-out, which enables automatic shard
    /// failover (a Down shard rebuilds from checkpoint + journal replay
    /// and re-admits itself) and zero-loss whole-fleet crash-restart.
    pub wal_dir: Option<PathBuf>,
    /// Journal segment size in bytes; the writer rotates to a fresh
    /// segment once the current one would exceed this.
    pub wal_segment_bytes: u64,
    /// Delete journal segments made fully redundant by per-shard
    /// checkpoints (bounded disk). Turn off to retain the full journal —
    /// required if shard checkpoints may be lost and the fleet must
    /// still rebuild them from the journal alone.
    pub wal_truncate_on_checkpoint: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shard: ServeConfig::default(),
            shards: 2,
            exchange_every_batches: 16,
            wal_dir: None,
            wal_segment_bytes: 4 << 20,
            wal_truncate_on_checkpoint: true,
        }
    }
}

impl FleetConfig {
    /// Sets the window length on the embedded shard configuration.
    pub fn with_window_days(mut self, days: u32) -> Self {
        self.shard = self.shard.with_window_days(days);
        self
    }

    /// The checkpoint path for shard `i`: the base path with `.shard<i>`
    /// appended to the file name (`None` when checkpointing is off).
    pub fn shard_checkpoint_path(&self, i: usize) -> Option<PathBuf> {
        self.shard.checkpoint_path.as_ref().map(|base| {
            let name = base
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            base.with_file_name(format!("{name}.shard{i}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_defaults_and_shard_paths() {
        let cfg = FleetConfig::default();
        assert!(cfg.shards >= 1);
        assert!(cfg.exchange_every_batches >= 1);
        assert_eq!(cfg.shard_checkpoint_path(0), None, "checkpointing opt-in");
        assert!(cfg.wal_dir.is_none(), "journaling is opt-in");
        assert!(cfg.wal_segment_bytes >= 1 << 12);
        assert!(cfg.wal_truncate_on_checkpoint, "bounded disk by default");
        let mut cfg = cfg;
        cfg.shard.checkpoint_path = Some(PathBuf::from("/tmp/fleet.ckpt"));
        assert_eq!(
            cfg.shard_checkpoint_path(3),
            Some(PathBuf::from("/tmp/fleet.ckpt.shard3"))
        );
    }

    #[test]
    fn defaults_are_consistent() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.window_days, cfg.pipeline.window_days);
        assert!(cfg.queue_capacity >= cfg.max_batch);
        assert!(cfg.recluster_every_batches >= 1);
        assert!(cfg.max_staleness_batches >= cfg.recluster_every_batches);
        assert!(cfg.shedding_after_crashes >= 1);
        assert!(cfg.down_after_crashes > cfg.shedding_after_crashes);
        assert!(cfg.restart_backoff <= cfg.restart_backoff_cap);
        assert!(cfg.checkpoint_every_batches >= 1);
        assert!(cfg.checkpoint_path.is_none(), "checkpointing is opt-in");
        assert!(
            cfg.delta_fraction_max > 0.0 && cfg.delta_fraction_max <= 1.0,
            "incremental reclustering on by default, bounded by |V|"
        );
        assert!(
            cfg.full_recluster_every >= 1,
            "memo lineage is bounded by default"
        );
        assert!(cfg.burst_window >= 1, "burst detection on by default");
        assert!(
            cfg.burst_recover_threshold < cfg.burst_shed_threshold,
            "recovery threshold must sit below the entry threshold (hysteresis)"
        );
        assert!((0.0..=1.0).contains(&cfg.burst_shed_threshold));
        assert!(cfg.burst_recovery_windows >= 1);
        assert!(cfg.burst_batch_divisor >= 1);
    }

    #[test]
    fn with_window_days_keeps_pipeline_in_sync() {
        let cfg = ServeConfig::default().with_window_days(10);
        assert_eq!(cfg.window_days, 10);
        assert_eq!(cfg.pipeline.window_days, 10);
    }
}
