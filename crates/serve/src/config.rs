//! Service configuration.

use glp_fraud::PipelineConfig;
use std::time::Duration;

/// What to do when a transaction arrives and the ingest queue is full.
///
/// Shedding is always **counted** (see
/// [`Telemetry`](crate::telemetry::Telemetry)); the service never drops
/// load silently and never blocks the producer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Evict the oldest queued transaction to make room for the new one.
    /// Keeps the window maximally fresh under overload at the cost of a
    /// gap in the oldest unprocessed data.
    DropOldest,
    /// Refuse the new transaction and tell the caller. Keeps the queue's
    /// contents intact; the producer decides whether to retry.
    RejectNew,
}

/// Tuning knobs for [`FraudService`](crate::FraudService).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bound of the ingest queue (transactions). When full, the
    /// [`ShedPolicy`] applies — this is the service's backpressure.
    pub queue_capacity: usize,
    /// Micro-batch size cap: the ingest stage drains at most this many
    /// transactions per batch.
    pub max_batch: usize,
    /// Micro-batch time budget: after the first transaction of a batch
    /// arrives, the batcher waits at most this long for more before
    /// applying what it has.
    pub batch_budget: Duration,
    /// Overload behaviour of the ingest queue.
    pub shed_policy: ShedPolicy,
    /// Sliding-window length in days (mirrors
    /// [`PipelineConfig::window_days`], which is kept in sync).
    pub window_days: u32,
    /// Recluster after this many applied batches (the freshness cadence).
    pub recluster_every_batches: u64,
    /// Hard staleness bound, in batches: when the published snapshot
    /// falls this far behind the window, the batcher stops applying and
    /// waits for the recluster to catch up. The queue then absorbs the
    /// offered load until the [`ShedPolicy`] kicks in — overload turns
    /// into *counted shedding with fresh-enough verdicts*, never into
    /// unboundedly stale verdicts.
    pub max_staleness_batches: u64,
    /// LP + scoring parameters, reusing the offline pipeline's stage 2–3
    /// configuration verbatim so online and offline verdicts agree.
    pub pipeline: PipelineConfig,
    /// Harness OS threads per LP kernel (0 = auto). Engine results are
    /// bit-deterministic across shard counts, which the determinism test
    /// pins end to end.
    pub engine_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let pipeline = PipelineConfig::default();
        Self {
            queue_capacity: 4_096,
            max_batch: 512,
            batch_budget: Duration::from_millis(5),
            shed_policy: ShedPolicy::DropOldest,
            window_days: pipeline.window_days,
            recluster_every_batches: 8,
            max_staleness_batches: 32,
            pipeline,
            engine_shards: 0,
        }
    }
}

impl ServeConfig {
    /// Sets the window length on both the service and the embedded
    /// pipeline configuration (they must agree).
    pub fn with_window_days(mut self, days: u32) -> Self {
        self.window_days = days;
        self.pipeline.window_days = days;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.window_days, cfg.pipeline.window_days);
        assert!(cfg.queue_capacity >= cfg.max_batch);
        assert!(cfg.recluster_every_batches >= 1);
        assert!(cfg.max_staleness_batches >= cfg.recluster_every_batches);
    }

    #[test]
    fn with_window_days_keeps_pipeline_in_sync() {
        let cfg = ServeConfig::default().with_window_days(10);
        assert_eq!(cfg.window_days, 10);
        assert_eq!(cfg.pipeline.window_days, 10);
    }
}
