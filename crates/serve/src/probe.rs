//! Detection-quality probe: scoring published snapshots against ground
//! truth, over time.
//!
//! Operational health (crash streaks, staleness, shed rates) says the
//! service is *up*; it says nothing about whether the verdicts are any
//! good. Against an adversarial workload that distinction is the whole
//! game — a fraud ring rotating its members daily can walk out of a
//! stale snapshot's flagged set while every operational signal stays
//! green. The [`DetectionProbe`] closes that gap: built from per-day
//! ground truth (e.g. an
//! [`AdversarialStream`](glp_fraud::AdversarialStream)'s rotation
//! schedule), it scores every published [`VerdictSnapshot`] /
//! [`FleetSnapshot`] as precision/recall against the truth *for the
//! window that snapshot covers*, and records each observation into the
//! telemetry block's detection time-series (`probe_evaluations` counter
//! + the `detection` section of the telemetry JSON).
//!
//! The probe is an offline-truth instrument: it lives in benches, tests,
//! and shadow deployments where ground truth is known. It reads
//! snapshots through the same `Arc` publication path queries use and
//! never touches the write side.

use crate::exchange::FleetSnapshot;
use crate::query::VerdictSnapshot;
use crate::telemetry::{ProbePoint, Telemetry};
use glp_fraud::{precision_recall, AdversarialStream};

/// Scores published snapshots against per-day ground truth (see module
/// docs).
#[derive(Clone, Debug)]
pub struct DetectionProbe {
    /// `truth_by_day[d]` = users truly fraudulent on day `d`, sorted
    /// ascending.
    truth_by_day: Vec<Vec<u32>>,
    /// Sliding-window length the scored service runs with: a snapshot
    /// whose `window_end` is `e` is scored against the union of truth
    /// over days `[e - window_days, e)`.
    window_days: u32,
}

impl DetectionProbe {
    /// A probe over explicit per-day truth. Each day's list is sorted
    /// and deduplicated here, so callers can pass raw membership lists.
    pub fn new(mut truth_by_day: Vec<Vec<u32>>, window_days: u32) -> Self {
        assert!(window_days >= 1, "a zero-day window scores nothing");
        for day in &mut truth_by_day {
            day.sort_unstable();
            day.dedup();
        }
        Self {
            truth_by_day,
            window_days,
        }
    }

    /// A probe over an adversarial stream's rotation schedule: day `d`'s
    /// truth is exactly the members active in some ring on day `d`.
    pub fn from_adversarial(stream: &AdversarialStream, window_days: u32) -> Self {
        let days = stream.config.base.days;
        Self::new(
            (0..days).map(|d| stream.truth_in(d, d + 1)).collect(),
            window_days,
        )
    }

    /// The ground truth for a window ending (exclusively) at `end`: the
    /// union of per-day truth over the window's days, sorted and
    /// deduplicated — a user active in *any* windowed day should be
    /// flagged by a snapshot of that window.
    pub fn truth_for_window(&self, end: u32) -> Vec<u32> {
        let from = end.saturating_sub(self.window_days) as usize;
        let to = (end as usize).min(self.truth_by_day.len());
        let mut truth: Vec<u32> = self.truth_by_day[from.min(to)..to]
            .iter()
            .flatten()
            .copied()
            .collect();
        truth.sort_unstable();
        truth.dedup();
        truth
    }

    /// Scores one verdict snapshot: precision and recall of its flagged
    /// users against [`Self::truth_for_window`] of its `window_end`.
    /// Pure — nothing is recorded; see [`Self::observe`].
    pub fn evaluate(&self, snapshot: &VerdictSnapshot) -> ProbePoint {
        let flagged: Vec<u32> = snapshot.flagged.iter().map(|&(u, _, _)| u).collect();
        let truth = self.truth_for_window(snapshot.window_end);
        let (precision, recall) = precision_recall(&flagged, &truth);
        ProbePoint {
            day: snapshot.window_end,
            as_of_batch: snapshot.as_of_batch,
            precision,
            recall,
            flagged: snapshot.num_flagged(),
            truth: truth.len(),
        }
    }

    /// Scores one snapshot and records the observation into `telemetry`
    /// (bumps `probe_evaluations`, appends to the detection
    /// time-series). Returns the recorded point.
    pub fn observe(&self, snapshot: &VerdictSnapshot, telemetry: &Telemetry) -> ProbePoint {
        let point = self.evaluate(snapshot);
        telemetry.record_probe(point);
        point
    }

    /// Scores a reconciled fleet snapshot — the fleet publishes the same
    /// [`VerdictSnapshot`] shape behind its boundary bookkeeping, so the
    /// fleet-level detection series is directly comparable to a
    /// single-core one.
    pub fn observe_fleet(&self, fleet: &FleetSnapshot, telemetry: &Telemetry) -> ProbePoint {
        self.observe(&fleet.verdicts, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn snapshot(window_end: u32, as_of: u64, flagged_users: &[u32]) -> VerdictSnapshot {
        VerdictSnapshot {
            window_end,
            as_of_batch: as_of,
            known_users: flagged_users.to_vec(),
            flagged: flagged_users.iter().map(|&u| (u, u, 1.0)).collect(),
            ..VerdictSnapshot::default()
        }
    }

    #[test]
    fn truth_unions_over_the_window() {
        let probe = DetectionProbe::new(vec![vec![1, 2], vec![2, 3], vec![9, 9, 4]], 2);
        assert_eq!(probe.truth_for_window(1), vec![1, 2]);
        assert_eq!(probe.truth_for_window(2), vec![1, 2, 3]);
        // Window [1, 3): day 0's members rotated out; dup deduped.
        assert_eq!(probe.truth_for_window(3), vec![2, 3, 4, 9]);
        // An end past the schedule clamps instead of panicking.
        assert_eq!(probe.truth_for_window(10), Vec::<u32>::new());
    }

    #[test]
    fn evaluate_scores_against_windowed_truth() {
        let probe = DetectionProbe::new(vec![vec![10, 11], vec![11, 12]], 2);
        // Flags one stale member (10, rotated in-window so still truth)
        // and one innocent (99).
        let p = probe.evaluate(&snapshot(2, 7, &[10, 99]));
        assert_eq!(p.day, 2);
        assert_eq!(p.as_of_batch, 7);
        assert_eq!(p.flagged, 2);
        assert_eq!(p.truth, 3);
        assert!((p.precision - 0.5).abs() < 1e-12);
        assert!((p.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn observe_records_into_the_detection_series() {
        let probe = DetectionProbe::new(vec![vec![5], vec![5]], 1);
        let t = Telemetry::new();
        probe.observe(&snapshot(1, 1, &[5]), &t);
        probe.observe(&snapshot(2, 2, &[]), &t);
        assert_eq!(t.probe_evaluations.load(Ordering::Relaxed), 2);
        let points = t.detection_points();
        assert_eq!(points.len(), 2);
        assert!((points[0].recall - 1.0).abs() < 1e-12);
        assert!((points[1].recall).abs() < 1e-12, "missed rotation shows");
    }
}
