//! One shard of the horizontally sharded fleet: a self-contained scoring
//! core owning a *slice* of the keyspace.
//!
//! A [`ShardCore`] is the sharded analogue of
//! [`ServiceCore`](crate::service::ServiceCore): its own incremental
//! window, verdict snapshot cell, telemetry block, health monitor, and
//! checkpoint — but fed only the transactions whose buyer the
//! [`Partitioner`](crate::partition::Partitioner) routes to it, and
//! synchronized to the *fleet's* day watermark rather than its own.
//!
//! Two things distinguish a shard window from a standalone one:
//!
//! * **Watermark sync.** Every routed micro-batch carries the fleet's
//!   global end-of-window watermark, and the shard advances to it even
//!   when its own sub-batch is empty. All shard windows therefore expire
//!   in lockstep, which is what makes a shard's log exactly the
//!   restriction of the reference log to its keyspace — the foundation
//!   of the fleet's byte-identity guarantee (see [`crate::exchange`]).
//! * **Sequence stamps.** The router stamps each transaction with a
//!   fleet-wide monotone sequence number before fan-out. The shard keeps
//!   the stamps aligned with its log (expiry pops both from the front)
//!   so the exchange can merge several shards' logs back into global
//!   arrival order, and checkpoints persist them
//!   ([`WindowCheckpoint::capture_with_seqs`]) so a restored fleet can
//!   still exchange correctly.

use crate::config::ServeConfig;
use crate::exchange::ShardFrame;
use crate::health::{HealthMonitor, HealthThresholds};
use crate::query::VerdictSnapshot;
use crate::recluster::{absorb_outcome, ReclusterMode, ReclusterRun, WarmState};
use crate::swap::EpochCell;
use crate::telemetry::Telemetry;
use glp_fraud::checkpoint::{CheckpointError, WindowCheckpoint};
use glp_fraud::{IncrementalWindow, Transaction};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The window and its parallel sequence stamps, guarded together: the
/// invariant `seqs.len() == window.num_transactions()` with
/// `seqs[i]` stamping `window.transactions()[i]` must hold at every
/// lock release.
struct ShardState {
    window: IncrementalWindow,
    seqs: VecDeque<u64>,
}

/// One shard's synchronous scoring core (see module docs).
pub struct ShardCore {
    id: usize,
    /// Leaked once per shard at construction so crash bookkeeping can
    /// use the supervisor's `&'static str` worker-name convention.
    apply_worker: &'static str,
    cfg: ServeConfig,
    /// Live blacklist seeds; churned via [`Self::update_blacklist`]
    /// (which also resets the warm memo — see
    /// [`ServiceCore::update_blacklist`](crate::service::ServiceCore::update_blacklist)
    /// for why).
    blacklist: Mutex<Vec<u32>>,
    state: Mutex<ShardState>,
    /// Warm-start state for this shard's sub-window reclusters; the lock
    /// serializes them (scheduled cadence vs failover rebuild).
    recluster: Mutex<WarmState>,
    verdicts: EpochCell<VerdictSnapshot>,
    telemetry: Arc<Telemetry>,
    health: Arc<HealthMonitor>,
    batches_applied: AtomicU64,
}

impl ShardCore {
    /// A shard with an empty window.
    pub fn new(id: usize, cfg: ServeConfig, blacklist: Vec<u32>) -> Self {
        let window = IncrementalWindow::empty(cfg.window_days);
        Self::from_state(id, cfg, blacklist, window, VecDeque::new(), 0, 0, &[])
    }

    /// A shard resuming from its per-shard checkpoint. Version-1 images
    /// (and single-core images being migrated into a fleet) carry no
    /// sequence stamps; their log positions stand in — correct because a
    /// single log *is* in global arrival order.
    pub fn restore(
        id: usize,
        cfg: ServeConfig,
        blacklist: Vec<u32>,
        ckpt: &WindowCheckpoint,
    ) -> Result<Self, CheckpointError> {
        if ckpt.days != cfg.window_days {
            return Err(CheckpointError::Invalid(
                "checkpoint window length disagrees with the configuration",
            ));
        }
        let window = ckpt.restore_window()?;
        let seqs: VecDeque<u64> = if ckpt.seqs.is_empty() {
            (0..window.num_transactions() as u64).collect()
        } else {
            ckpt.seqs.iter().copied().collect()
        };
        let core = Self::from_state(
            id,
            cfg,
            blacklist,
            window,
            seqs,
            ckpt.batches_applied,
            ckpt.snapshot_epoch,
            &ckpt.counters,
        );
        // Rebuild local verdicts before anything is served from this
        // shard (the fleet-level exchange follows once every shard is
        // up — see `FleetCore::restore`).
        core.recluster_now();
        Ok(core)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_state(
        id: usize,
        cfg: ServeConfig,
        blacklist: Vec<u32>,
        window: IncrementalWindow,
        seqs: VecDeque<u64>,
        batches_applied: u64,
        snapshot_epoch: u64,
        counters: &[u64],
    ) -> Self {
        assert_eq!(
            seqs.len(),
            window.num_transactions(),
            "sequence stamps must parallel the log"
        );
        let telemetry = Arc::new(Telemetry::new());
        telemetry.restore_counters(counters);
        let health = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: cfg.shedding_after_crashes,
            down_after: cfg.down_after_crashes,
        }));
        let initial = VerdictSnapshot {
            as_of_batch: batches_applied,
            ..VerdictSnapshot::default()
        };
        Self {
            id,
            apply_worker: Box::leak(format!("shard{id}-apply").into_boxed_str()),
            cfg,
            blacklist: Mutex::new(blacklist),
            state: Mutex::new(ShardState { window, seqs }),
            recluster: Mutex::new(WarmState::default()),
            verdicts: EpochCell::with_epoch(initial, snapshot_epoch),
            telemetry,
            health,
            batches_applied: AtomicU64::new(batches_applied),
        }
    }

    /// Shard index in the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Worker name used for this shard's apply-side crash bookkeeping.
    pub fn apply_worker(&self) -> &'static str {
        self.apply_worker
    }

    /// This shard's telemetry block.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// This shard's health monitor.
    pub fn health(&self) -> &Arc<HealthMonitor> {
        &self.health
    }

    /// Applies blacklist churn to this shard: same contract as
    /// [`ServiceCore::update_blacklist`](crate::service::ServiceCore::update_blacklist)
    /// — a changed seed set resets the shard's warm memo so the next
    /// local recluster runs from scratch. The *fleet-level* counterpart
    /// ([`FleetCore::update_blacklist`](crate::router::FleetCore::update_blacklist))
    /// fans out here and additionally resets the boundary cache.
    pub fn update_blacklist(&self, add: &[u32], remove: &[u32]) -> bool {
        let changed = {
            let mut bl = self.blacklist.lock().unwrap_or_else(|e| e.into_inner());
            let before = bl.clone();
            bl.extend_from_slice(add);
            bl.sort_unstable();
            bl.dedup();
            bl.retain(|u| !remove.contains(u));
            *bl != before
        };
        if changed {
            self.telemetry
                .blacklist_revisions
                .fetch_add(1, Ordering::Relaxed);
            self.recluster
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .reset();
        }
        changed
    }

    /// Fleet micro-batches this shard has absorbed (empty sub-batches
    /// count: the watermark still advanced).
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied.load(Ordering::Relaxed)
    }

    /// The freshest locally published snapshot (shard keyspace only).
    pub fn snapshot(&self) -> Arc<VerdictSnapshot> {
        self.verdicts.load()
    }

    /// Local snapshots published so far.
    pub fn epoch(&self) -> u64 {
        self.verdicts.epoch()
    }

    /// The highest sequence stamp currently in the window, if any —
    /// what a restored fleet resumes its stamp counter from.
    pub fn last_seq(&self) -> Option<u64> {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.seqs.back().copied()
    }

    /// This shard's window end (equals the fleet watermark after every
    /// routed batch).
    pub fn window_end(&self) -> u32 {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.window.end()
    }

    /// Applies one routed, *pre-validated* sub-batch and advances the
    /// window to the fleet watermark. The router has already filtered
    /// non-finite amounts and day regressions against the running global
    /// end, and the sub-batch preserves global arrival order, so the
    /// day-monotonicity invariant of `apply_batch` holds by
    /// construction. Returns the shard's new batch count.
    pub fn apply(&self, batch: &[(u64, Transaction)], watermark: u32) -> u64 {
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let txs: Vec<Transaction> = batch.iter().map(|&(_, t)| t).collect();
            s.window.apply_batch(&txs);
            s.window.advance_to(watermark);
            for &(seq, _) in batch {
                s.seqs.push_back(seq);
            }
            // Expiry only ever pops the log's front, and the log shares
            // the stamps' order — so realign by popping stamps of
            // expired transactions from the front.
            while s.seqs.len() > s.window.num_transactions() {
                s.seqs.pop_front();
            }
            debug_assert_eq!(s.seqs.len(), s.window.num_transactions());
        }
        if !batch.is_empty() {
            self.telemetry.batch_size.record(batch.len() as u64);
            self.telemetry.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.batches_applied.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Materializes this shard's window (with its delta), reclusters it
    /// — incrementally when the shard's previous memo covers the delta —
    /// and publishes the shard-local snapshot. Returns what ran; the
    /// run's `wall_seconds` replaces the old bare-`f64` return and is
    /// the quantity the scaling bench combines as `max(shard walls)` to
    /// model shards running in parallel on hardware this container does
    /// not have.
    pub fn recluster_now(&self) -> ReclusterRun {
        let started = Instant::now();
        let mut st = self.recluster.lock().unwrap_or_else(|e| e.into_inner());
        let (workload, delta, window_end, as_of) = {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let (workload, delta) = s.window.materialize_delta();
            (
                workload,
                delta,
                s.window.end(),
                self.batches_applied.load(Ordering::Relaxed),
            )
        };
        let mut mode = ReclusterMode::Full;
        let mut frontier = 0usize;
        let snapshot = if workload.graph.num_vertices() == 0 {
            st.reset();
            VerdictSnapshot {
                window_end,
                as_of_batch: as_of,
                ..VerdictSnapshot::default()
            }
        } else {
            let blacklist = self
                .blacklist
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            let outcome = st.run(
                &workload, &blacklist, &self.cfg, &delta, as_of, window_end, None,
            );
            absorb_outcome(&self.telemetry, &self.health, &outcome);
            mode = outcome.mode;
            frontier = outcome.frontier;
            outcome.snapshot
        };
        self.verdicts.publish(snapshot);
        self.telemetry.reclusters.fetch_add(1, Ordering::Relaxed);
        let wall = started.elapsed();
        self.telemetry.recluster_wall.record(wall.as_nanos() as u64);
        ReclusterRun {
            mode,
            wall_seconds: wall.as_secs_f64(),
            frontier,
        }
    }

    /// A consistent copy of this shard's log with its sequence stamps —
    /// the shard's contribution to the cross-shard exchange.
    pub fn frame(&self) -> ShardFrame {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        ShardFrame {
            shard: self.id,
            days: s.window.days(),
            end: s.window.end(),
            txs: s
                .seqs
                .iter()
                .copied()
                .zip(s.window.transactions().copied())
                .collect(),
        }
    }

    /// Persists this shard's window *with* its sequence stamps to
    /// `path` (atomic temp-file write; failures counted, previous image
    /// preserved). Returns the batch count the persisted image carries —
    /// the shard's *durable* progress, which the router uses as the
    /// journal-truncation watermark.
    pub fn checkpoint(&self, path: &Path) -> Result<u64, CheckpointError> {
        let ckpt = {
            let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            WindowCheckpoint::capture_with_seqs(
                &s.window,
                self.batches_applied.load(Ordering::Relaxed),
                self.verdicts.epoch(),
                self.telemetry.counters_snapshot(),
                s.seqs.iter().copied().collect(),
            )
        };
        let durable = ckpt.batches_applied;
        match ckpt.write_atomic(path) {
            Ok(()) => {
                self.telemetry
                    .checkpoints_written
                    .fetch_add(1, Ordering::Relaxed);
                Ok(durable)
            }
            Err(e) => {
                self.telemetry
                    .checkpoint_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Replaces this shard's entire window state in one swap — the
    /// failover path: the caller has reconstructed the window and its
    /// stamps offline (checkpoint image + journal replay) and installs
    /// the result here before [`HealthMonitor::revive`]-ing the shard.
    /// Clears a poison left by the crash that killed the shard: the dying
    /// apply is the reason this rebuild exists, and its partial state is
    /// discarded wholesale by the swap.
    pub(crate) fn rebuild_from(
        &self,
        window: IncrementalWindow,
        seqs: VecDeque<u64>,
        batches_applied: u64,
    ) {
        assert_eq!(
            seqs.len(),
            window.num_transactions(),
            "rebuilt stamps must parallel the rebuilt log"
        );
        self.state.clear_poison();
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.window = window;
        s.seqs = seqs;
        drop(s);
        // The old memo describes the discarded window; the next
        // recluster must run full. (The rebuilt window's first delta
        // reports `expired` anyway — this keeps the drift counter honest
        // too.)
        self.recluster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .reset();
        self.batches_applied
            .store(batches_applied, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_fraud::{TxConfig, TxStream};

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 800,
            num_items: 300,
            days: 12,
            tx_per_day: 500,
            num_rings: 2,
            ring_size: 10,
            ring_tx_per_day: 25,
            blacklist_fraction: 0.3,
            ..Default::default()
        })
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            engine_shards: 2,
            ..ServeConfig::default()
        }
        .with_window_days(8)
    }

    #[test]
    fn shard_window_tracks_the_fleet_watermark() {
        let s = stream();
        let shard = ShardCore::new(1, cfg(), s.blacklist.clone());
        let mut seq = 0u64;
        for day in 0..s.config.days {
            // Route only even buyers here; the watermark still advances
            // on days where this shard sees nothing.
            let batch: Vec<(u64, Transaction)> = s
                .window(day, day + 1)
                .filter(|t| t.buyer % 2 == 0)
                .map(|&t| {
                    seq += 1;
                    (seq, t)
                })
                .collect();
            shard.apply(&batch, day + 1);
            assert_eq!(shard.window_end(), day + 1);
        }
        assert_eq!(shard.batches_applied(), u64::from(s.config.days));
        let frame = shard.frame();
        assert_eq!(frame.shard, 1);
        assert_eq!(frame.end, s.config.days);
        assert!(frame.txs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(frame.txs.iter().all(|(_, t)| t.buyer % 2 == 0));
        // Expiry kept stamps parallel to the log: only the last
        // `window_days` days remain.
        assert!(frame.txs.iter().all(|(_, t)| t.day + 8 >= s.config.days));
        shard.recluster_now();
        assert_eq!(shard.snapshot().window_end, s.config.days);
    }

    #[test]
    fn shard_checkpoint_roundtrips_with_stamps() {
        let s = stream();
        let dir = std::env::temp_dir().join(format!("glp-shard-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard0.ckpt");
        let shard = ShardCore::new(0, cfg(), s.blacklist.clone());
        let mut seq = 10u64;
        for day in 0..s.config.days {
            let batch: Vec<(u64, Transaction)> = s
                .window(day, day + 1)
                .filter(|t| t.buyer % 2 == 1)
                .map(|&t| {
                    seq += 3; // sparse, non-contiguous stamps survive
                    (seq, t)
                })
                .collect();
            shard.apply(&batch, day + 1);
        }
        shard.recluster_now();
        shard.checkpoint(&path).unwrap();
        let ckpt = WindowCheckpoint::read(&path).unwrap();
        let restored = ShardCore::restore(0, cfg(), s.blacklist.clone(), &ckpt).unwrap();
        assert_eq!(restored.batches_applied(), shard.batches_applied());
        assert_eq!(restored.last_seq(), shard.last_seq());
        let (a, b) = (shard.frame(), restored.frame());
        assert_eq!(a.txs.len(), b.txs.len());
        assert!(a.txs.iter().zip(&b.txs).all(|(x, y)| x.0 == y.0));
        assert_eq!(
            shard.snapshot().canonical_bytes(),
            restored.snapshot().canonical_bytes(),
            "restored shard must score byte-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
