//! Deterministic, seeded fault injection (feature `fault-injection`).
//!
//! Every failure path the fault-tolerance layer claims to handle —
//! worker panics, poisoned locks, stalled reclusters, corrupt
//! transactions, failed checkpoint writes — is driven by real tests and
//! the `chaos_serve` bench bin through this plan, not by hand-waving. A
//! [`FaultPlan`] is a list of faults pinned to *logical* indices (batch
//! number, recluster number), so a plan replays identically on every run
//! regardless of wall-clock timing; [`FaultPlan::seeded`] derives those
//! indices from a seed (SplitMix64) so chaos sweeps can explore schedules
//! without losing reproducibility.
//!
//! Each fault fires **once**: firing is recorded (with a timestamp, so
//! the chaos harness can measure recovery latency) and the same fault
//! never re-triggers after the supervisor restarts the worker. To model a
//! crash *loop*, list the same index several times.
//!
//! The hooks live at three layers, mirroring where real faults originate:
//! panics and corruption in this crate's worker loops, checkpoint-write
//! failures in `glp_fraud::checkpoint::faults`, and kernel stalls in
//! `glp_gpusim::faults` (so a "slow recluster" is experienced by the
//! entire stack above the device, not simulated at the top).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One injectable fault, pinned to a logical index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic the batcher worker just before it drains batch `at_batch`
    /// (the batch itself stays queued — lossless, so recovery can be
    /// asserted byte-identical to a fault-free run).
    BatcherPanic {
        /// Batch index (= batches applied so far) to fire at.
        at_batch: u64,
    },
    /// Panic the batcher *inside* the window critical section while
    /// applying batch `at_batch`, poisoning the window mutex (the batch
    /// in hand is lost; the window itself is untouched).
    PanicInApply {
        /// Batch index to fire at.
        at_batch: u64,
    },
    /// Panic the recluster worker just before recluster `at_recluster`.
    ReclusterPanic {
        /// Recluster index (= reclusters completed so far) to fire at.
        at_recluster: u64,
    },
    /// Stall recluster `at_recluster` by `millis` via an injected kernel
    /// stall in `glp-gpusim` — the whole stack above the device sees a
    /// slow card.
    ReclusterStall {
        /// Recluster index to fire at.
        at_recluster: u64,
        /// Injected stall length in milliseconds.
        millis: u64,
    },
    /// Overwrite the first transaction of batch `at_batch` with a
    /// non-finite amount after it passed the ingest gate — a corrupt
    /// record appearing inside the pipeline, which the apply-side
    /// validation must shed (counted), not apply.
    CorruptTx {
        /// Batch index to fire at.
        at_batch: u64,
    },
    /// Make the checkpoint write due at batch `at_batch` fail with an
    /// injected I/O error (via `glp_fraud::checkpoint::faults`).
    CheckpointFail {
        /// Batch index to fire at.
        at_batch: u64,
    },
    /// Panic shard `shard`'s apply path while the router fans out fleet
    /// batch `at_batch` — the sharded service's "one machine dies"
    /// scenario. The router catches it, records the crash against that
    /// shard's health, and keeps serving the surviving keyspace; list
    /// the same shard several times to walk it all the way to Down.
    ShardPanic {
        /// Shard index to kill.
        shard: usize,
        /// Fleet batch index (= fleet batches applied so far) to fire at.
        at_batch: u64,
    },
    /// Make the journal append for fleet batch `at_batch` fail with an
    /// injected I/O error — the durability path breaks while the scoring
    /// path keeps working. The router records the failure against its
    /// `wal-journal` worker (degrading the fleet, loudly) and still fans
    /// the batch out: availability over durability.
    WalAppendFail {
        /// Fleet batch index to fire at.
        at_batch: u64,
    },
    /// Panic the router *between* journaling fleet batch `at_batch` and
    /// fanning it out — the canonical write-ahead crash window. The batch
    /// is durable but no shard ever saw it; recovery must replay it from
    /// the journal exactly once.
    CrashAfterJournal {
        /// Fleet batch index to fire at.
        at_batch: u64,
    },
}

impl Fault {
    fn describe(&self) -> String {
        match self {
            Self::BatcherPanic { at_batch } => format!("batcher-panic@batch{at_batch}"),
            Self::PanicInApply { at_batch } => format!("panic-in-apply@batch{at_batch}"),
            Self::ReclusterPanic { at_recluster } => {
                format!("recluster-panic@recluster{at_recluster}")
            }
            Self::ReclusterStall {
                at_recluster,
                millis,
            } => {
                format!("recluster-stall({millis}ms)@recluster{at_recluster}")
            }
            Self::CorruptTx { at_batch } => format!("corrupt-tx@batch{at_batch}"),
            Self::CheckpointFail { at_batch } => format!("checkpoint-fail@batch{at_batch}"),
            Self::ShardPanic { shard, at_batch } => {
                format!("shard{shard}-panic@batch{at_batch}")
            }
            Self::WalAppendFail { at_batch } => format!("wal-append-fail@batch{at_batch}"),
            Self::CrashAfterJournal { at_batch } => {
                format!("crash-after-journal@batch{at_batch}")
            }
        }
    }
}

/// A fault that has fired, with when it fired.
#[derive(Clone, Debug)]
pub struct FiredFault {
    /// Human-readable description (`class@index`).
    pub what: String,
    /// When the hook fired.
    pub at: Instant,
}

#[derive(Debug)]
struct Slot {
    fault: Fault,
    fired: AtomicBool,
}

/// How many of each fault class [`FaultPlan::seeded`] should schedule,
/// and over what index horizons.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Lossless batcher panics ([`Fault::BatcherPanic`]).
    pub batcher_panics: u32,
    /// In-lock batcher panics ([`Fault::PanicInApply`]).
    pub apply_panics: u32,
    /// Recluster-worker panics.
    pub recluster_panics: u32,
    /// Injected kernel stalls.
    pub recluster_stalls: u32,
    /// Stall length for each injected stall (ms).
    pub stall_millis: u64,
    /// Corrupt-transaction injections.
    pub corrupt_txs: u32,
    /// Checkpoint-write failures.
    pub checkpoint_fails: u32,
    /// Journal-append failures ([`Fault::WalAppendFail`]).
    pub wal_append_fails: u32,
    /// Crashes in the journal→fan-out window ([`Fault::CrashAfterJournal`]).
    pub journal_crashes: u32,
    /// Batch indices are drawn uniformly from `1..batch_horizon`.
    pub batch_horizon: u64,
    /// Recluster indices are drawn uniformly from `1..recluster_horizon`.
    pub recluster_horizon: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            batcher_panics: 1,
            apply_panics: 0,
            recluster_panics: 0,
            recluster_stalls: 0,
            stall_millis: 50,
            corrupt_txs: 0,
            checkpoint_fails: 0,
            wal_append_fails: 0,
            journal_crashes: 0,
            batch_horizon: 16,
            recluster_horizon: 4,
        }
    }
}

/// A deterministic schedule of faults, shared by the service's worker
/// loops (each hook consults it at its own logical index).
#[derive(Debug, Default)]
pub struct FaultPlan {
    slots: Vec<Slot>,
    fired: Mutex<Vec<FiredFault>>,
}

impl FaultPlan {
    /// A plan firing exactly the given faults.
    pub fn new(faults: impl IntoIterator<Item = Fault>) -> Self {
        Self {
            slots: faults
                .into_iter()
                .map(|fault| Slot {
                    fault,
                    fired: AtomicBool::new(false),
                })
                .collect(),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// A plan whose fault indices are derived deterministically from
    /// `seed` (SplitMix64): the same seed and spec always produce the
    /// same schedule.
    pub fn seeded(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::new();
        let batch_at = |rng: &mut SplitMix64| rng.below(spec.batch_horizon.max(2) - 1) + 1;
        let recluster_at = |rng: &mut SplitMix64| rng.below(spec.recluster_horizon.max(2) - 1) + 1;
        for _ in 0..spec.batcher_panics {
            faults.push(Fault::BatcherPanic {
                at_batch: batch_at(&mut rng),
            });
        }
        for _ in 0..spec.apply_panics {
            faults.push(Fault::PanicInApply {
                at_batch: batch_at(&mut rng),
            });
        }
        for _ in 0..spec.recluster_panics {
            faults.push(Fault::ReclusterPanic {
                at_recluster: recluster_at(&mut rng),
            });
        }
        for _ in 0..spec.recluster_stalls {
            faults.push(Fault::ReclusterStall {
                at_recluster: recluster_at(&mut rng),
                millis: spec.stall_millis,
            });
        }
        for _ in 0..spec.corrupt_txs {
            faults.push(Fault::CorruptTx {
                at_batch: batch_at(&mut rng),
            });
        }
        for _ in 0..spec.checkpoint_fails {
            faults.push(Fault::CheckpointFail {
                at_batch: batch_at(&mut rng),
            });
        }
        for _ in 0..spec.wal_append_fails {
            faults.push(Fault::WalAppendFail {
                at_batch: batch_at(&mut rng),
            });
        }
        for _ in 0..spec.journal_crashes {
            faults.push(Fault::CrashAfterJournal {
                at_batch: batch_at(&mut rng),
            });
        }
        Self::new(faults)
    }

    /// The scheduled faults, in order.
    pub fn scheduled(&self) -> Vec<Fault> {
        self.slots.iter().map(|s| s.fault).collect()
    }

    /// Faults that have fired so far, with timestamps.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Whether every scheduled fault has fired.
    pub fn all_fired(&self) -> bool {
        self.slots.iter().all(|s| s.fired.load(Ordering::Acquire))
    }

    /// Atomically claims the first unfired fault matching `pred`.
    fn take(&self, pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
        for slot in &self.slots {
            if pred(&slot.fault)
                && slot
                    .fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                self.fired
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(FiredFault {
                        what: slot.fault.describe(),
                        at: Instant::now(),
                    });
                return Some(slot.fault);
            }
        }
        None
    }

    /// Batcher hook, before draining batch `next_batch`: panics if a
    /// [`Fault::BatcherPanic`] is due.
    pub fn maybe_panic_batcher(&self, next_batch: u64) {
        if let Some(f) =
            self.take(|f| matches!(f, Fault::BatcherPanic { at_batch } if *at_batch == next_batch))
        {
            panic!("fault-injection: {}", f.describe());
        }
    }

    /// Apply hook, inside the window critical section for batch `batch`:
    /// panics (poisoning the window mutex) if a [`Fault::PanicInApply`]
    /// is due.
    pub fn maybe_panic_in_apply(&self, batch: u64) {
        if let Some(f) =
            self.take(|f| matches!(f, Fault::PanicInApply { at_batch } if *at_batch == batch))
        {
            panic!("fault-injection: {}", f.describe());
        }
    }

    /// Batcher hook, after draining batch `batch`: whether to corrupt it.
    pub fn corrupt_due(&self, batch: u64) -> bool {
        self.take(|f| matches!(f, Fault::CorruptTx { at_batch } if *at_batch == batch))
            .is_some()
    }

    /// Batcher hook, before the checkpoint write due at batch `batch`:
    /// whether the write should be made to fail.
    pub fn checkpoint_fail_due(&self, batch: u64) -> bool {
        self.take(|f| matches!(f, Fault::CheckpointFail { at_batch } if *at_batch == batch))
            .is_some()
    }

    /// Recluster hook, before recluster `next`: panics if a
    /// [`Fault::ReclusterPanic`] is due.
    pub fn maybe_panic_recluster(&self, next: u64) {
        if let Some(f) = self
            .take(|f| matches!(f, Fault::ReclusterPanic { at_recluster } if *at_recluster == next))
        {
            panic!("fault-injection: {}", f.describe());
        }
    }

    /// Router hook, while fanning out fleet batch `batch` to shard
    /// `shard`: panics if a [`Fault::ShardPanic`] is due for this shard
    /// at this batch.
    pub fn maybe_panic_shard(&self, shard: usize, batch: u64) {
        if let Some(f) = self.take(|f| {
            matches!(f, Fault::ShardPanic { shard: s, at_batch } if *s == shard && *at_batch == batch)
        }) {
            panic!("fault-injection: {}", f.describe());
        }
    }

    /// Router hook, before journaling fleet batch `batch`: whether the
    /// journal append should be made to fail.
    pub fn wal_append_fail_due(&self, batch: u64) -> bool {
        self.take(|f| matches!(f, Fault::WalAppendFail { at_batch } if *at_batch == batch))
            .is_some()
    }

    /// Router hook, after journaling fleet batch `batch` but before
    /// fan-out: panics if a [`Fault::CrashAfterJournal`] is due — the
    /// batch is durable on disk, no shard has applied it.
    pub fn maybe_crash_after_journal(&self, batch: u64) {
        if let Some(f) =
            self.take(|f| matches!(f, Fault::CrashAfterJournal { at_batch } if *at_batch == batch))
        {
            panic!("fault-injection: {}", f.describe());
        }
    }

    /// Recluster hook, before recluster `next`: the stall length to
    /// inject, if one is due.
    pub fn stall_due(&self, next: u64) -> Option<u64> {
        match self.take(
            |f| matches!(f, Fault::ReclusterStall { at_recluster, .. } if *at_recluster == next),
        ) {
            Some(Fault::ReclusterStall { millis, .. }) => Some(millis),
            _ => None,
        }
    }
}

/// SplitMix64: tiny, seedable, statistically fine for drawing fault
/// indices (this crate deliberately has no `rand` dependency).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n ≥ 1).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let spec = FaultSpec {
            batcher_panics: 2,
            recluster_stalls: 1,
            corrupt_txs: 1,
            ..FaultSpec::default()
        };
        let a = FaultPlan::seeded(7, &spec);
        let b = FaultPlan::seeded(7, &spec);
        let c = FaultPlan::seeded(8, &spec);
        assert_eq!(a.scheduled(), b.scheduled());
        assert_ne!(
            a.scheduled(),
            c.scheduled(),
            "different seed, different schedule"
        );
        assert_eq!(a.scheduled().len(), 4);
    }

    #[test]
    fn faults_fire_once_at_their_index() {
        let plan = FaultPlan::new([
            Fault::CorruptTx { at_batch: 3 },
            Fault::CorruptTx { at_batch: 3 },
        ]);
        assert!(!plan.corrupt_due(2));
        assert!(plan.corrupt_due(3));
        assert!(plan.corrupt_due(3), "second listing fires a second time");
        assert!(!plan.corrupt_due(3), "then the plan is exhausted");
        assert!(plan.all_fired());
        assert_eq!(plan.fired().len(), 2);
    }

    #[test]
    fn panic_hooks_panic_with_a_description() {
        let plan = FaultPlan::new([Fault::BatcherPanic { at_batch: 1 }]);
        plan.maybe_panic_batcher(0); // not due: no panic
        let err = std::panic::catch_unwind(|| plan.maybe_panic_batcher(1)).unwrap_err();
        let msg = crate::supervisor::panic_message(err.as_ref());
        assert!(msg.contains("batcher-panic@batch1"), "{msg}");
        assert!(plan.all_fired());
    }
}
