//! The ingest stage: a bounded queue with explicit backpressure in front
//! of a micro-batcher.
//!
//! Producers submit transactions through [`IngestGate`]; the queue bound
//! is the service's only buffer, so overload is confronted immediately at
//! the door and handled by the configured [`ShedPolicy`] — **counted**,
//! never silent, and never by blocking the producer. The batch loop
//! drains the queue into micro-batches shaped by both a size cap and a
//! time budget: under load batches fill to `max_batch` (amortizing the
//! window lock), when traffic is thin the budget bounds how long a lone
//! transaction waits before it is applied.
//!
//! A [`BurstState`] detector watches the gate's shed rate over fixed
//! evaluation windows. When the rate crosses the configured threshold
//! the service enters *burst* mode: the batcher tightens (smaller
//! batches, shorter budgets, so the queue drains faster) and the health
//! overlay reports at least `Degraded`; the detector leaves burst mode
//! only after a configurable run of calm windows (hysteresis).
//! Crucially, burst mode never changes *admission* decisions — the
//! accepted-transaction sequence stays a pure function of the offered
//! schedule, which the overload determinism test pins.

use crate::config::{ServeConfig, ShedPolicy};
use crate::health::{HealthMonitor, HealthState};
use crate::telemetry::Telemetry;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use glp_fraud::Transaction;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A transaction stamped at submission, so the batcher can charge the
/// full queue wait to the ingest-lag histogram.
#[derive(Clone, Copy, Debug)]
pub struct Submitted {
    /// The transaction itself.
    pub tx: Transaction,
    /// When the producer handed it over.
    pub at: Instant,
}

/// Shed-rate burst detector shared by the gate (which feeds it one
/// observation per submit) and the batcher (which tightens while a
/// burst is active).
///
/// The detector evaluates once per [`ServeConfig::burst_window`] gate
/// submissions: a window whose shed rate reaches
/// `burst_shed_threshold` enters burst mode (counted in
/// `bursts_detected`, health overlay raised); only
/// `burst_recovery_windows` consecutive windows below
/// `burst_recover_threshold` leave it. Windows are counted in
/// *submissions*, not wall time, so detection is a deterministic
/// function of the offered schedule.
#[derive(Debug)]
pub struct BurstState {
    window: u64,
    enter: f64,
    exit: f64,
    recovery_windows: u32,
    divisor: u32,
    submissions: AtomicU64,
    sheds: AtomicU64,
    calm: AtomicU32,
    active: AtomicBool,
    health: Arc<HealthMonitor>,
    telemetry: Arc<Telemetry>,
}

impl BurstState {
    /// A detector wired to `cfg`'s burst knobs, or `None` when
    /// `burst_window == 0` (detection disabled).
    pub fn from_config(
        cfg: &ServeConfig,
        health: Arc<HealthMonitor>,
        telemetry: Arc<Telemetry>,
    ) -> Option<Arc<Self>> {
        if cfg.burst_window == 0 {
            return None;
        }
        assert!(
            cfg.burst_recover_threshold < cfg.burst_shed_threshold,
            "burst hysteresis needs recover < shed threshold"
        );
        assert!(cfg.burst_recovery_windows >= 1 && cfg.burst_batch_divisor >= 1);
        Some(Arc::new(Self {
            window: cfg.burst_window,
            enter: cfg.burst_shed_threshold,
            exit: cfg.burst_recover_threshold,
            recovery_windows: cfg.burst_recovery_windows,
            divisor: cfg.burst_batch_divisor,
            submissions: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            calm: AtomicU32::new(0),
            active: AtomicBool::new(false),
            health,
            telemetry,
        }))
    }

    /// Whether a burst is currently active.
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// One gate observation: `shed` is true when the submit shed load
    /// (overflow or unhealthy — invalid transactions are not an overload
    /// signal). The submission that completes an evaluation window
    /// evaluates the window's shed rate and drives the enter/exit
    /// transitions.
    fn record(&self, shed: bool) {
        if shed {
            self.sheds.fetch_add(1, Ordering::Relaxed);
        }
        let n = self.submissions.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.window) {
            return;
        }
        // Racing producers may attribute a shed to the neighbouring
        // window; the rate is a smoothed signal either way, and in the
        // single-producer harnesses (benches, tests) this is exact.
        let shed_count = self.sheds.swap(0, Ordering::AcqRel);
        let rate = shed_count as f64 / self.window as f64;
        if rate >= self.enter {
            self.calm.store(0, Ordering::Relaxed);
            if !self.active.swap(true, Ordering::AcqRel) {
                self.telemetry
                    .bursts_detected
                    .fetch_add(1, Ordering::Relaxed);
                self.health.set_burst(true);
            }
        } else if rate < self.exit {
            if self.active() {
                let calm = self.calm.fetch_add(1, Ordering::AcqRel) + 1;
                if calm >= self.recovery_windows {
                    self.calm.store(0, Ordering::Relaxed);
                    self.active.store(false, Ordering::Release);
                    self.health.set_burst(false);
                }
            }
        } else {
            // In the hysteresis band: not calm enough to recover, not
            // loud enough to (re-)enter.
            self.calm.store(0, Ordering::Relaxed);
        }
    }

    /// One *calm window* worth of evidence from outside the gate: the
    /// batcher reports an idle tick (the queue sat empty for a full
    /// budget — a flood cannot be in progress). Walks the same
    /// hysteresis exit as a below-threshold evaluation window, so a
    /// burst followed by silence still recovers instead of pinning the
    /// overlay until the next traffic arrives.
    fn note_calm(&self) {
        if !self.active() {
            return;
        }
        let calm = self.calm.fetch_add(1, Ordering::AcqRel) + 1;
        if calm >= self.recovery_windows {
            self.calm.store(0, Ordering::Relaxed);
            self.active.store(false, Ordering::Release);
            self.health.set_burst(false);
        }
    }

    /// Clears the detector outright — the ingest queue closed (every
    /// gate dropped), so there is no admission left to protect and a
    /// lingering overlay would misreport the final health.
    fn force_clear(&self) {
        if self.active.swap(false, Ordering::AcqRel) {
            self.health.set_burst(false);
        }
        self.calm.store(0, Ordering::Relaxed);
    }

    /// The batch shape the batcher should use right now: the configured
    /// `(max_batch, budget)` untouched when calm, divided by the burst
    /// divisor (floor 1 transaction / 1 ms) while a burst is active.
    fn shape(&self, max_batch: usize, budget: Duration) -> (usize, Duration) {
        if !self.active() {
            return (max_batch, budget);
        }
        let d = self.divisor as usize;
        (
            (max_batch / d).max(1),
            (budget / self.divisor).max(Duration::from_millis(1)),
        )
    }
}

/// Creates the ingest pair: the producer-facing gate and the
/// batcher-facing drain. `window_days` and the `window_end` watermark
/// (maintained by the apply path) bound the day-regression check; the
/// health monitor closes the gate while the service is
/// [`Shedding`](HealthState::Shedding) or worse. `burst`, when present,
/// receives one observation per submit (see [`BurstState`]).
pub fn ingest_pair(
    capacity: usize,
    policy: ShedPolicy,
    window_days: u32,
    window_end: Arc<AtomicU32>,
    health: Arc<HealthMonitor>,
    telemetry: Arc<Telemetry>,
    burst: Option<Arc<BurstState>>,
) -> (IngestGate, Receiver<Submitted>) {
    let (tx, rx) = bounded(capacity);
    (
        IngestGate {
            tx,
            evict: rx.clone(),
            policy,
            window_days,
            window_end,
            health,
            telemetry,
            burst,
        },
        rx,
    )
}

/// Producer-facing submission point. Cloneable; one per producer thread.
#[derive(Clone)]
pub struct IngestGate {
    tx: Sender<Submitted>,
    /// Second receiver on the same queue, used only to evict under
    /// [`ShedPolicy::DropOldest`] (the queue is MPMC, so eviction is just
    /// a competing consumer).
    evict: Receiver<Submitted>,
    policy: ShedPolicy,
    window_days: u32,
    /// Watermark of the window's exclusive end day, maintained by the
    /// apply path. Only ever increases, so a slightly stale read makes
    /// the gate's day check *more permissive* — the apply-side validation
    /// remains authoritative.
    window_end: Arc<AtomicU32>,
    health: Arc<HealthMonitor>,
    telemetry: Arc<Telemetry>,
    burst: Option<Arc<BurstState>>,
}

impl IngestGate {
    /// Whether `tx` is obviously malformed: a non-finite amount, or a
    /// day regression beyond the live window (it could only corrupt
    /// history that has already expired). Note that `buyer == item` is
    /// *not* malformed — buyer and item ids live in disjoint namespaces
    /// (the bipartite build assigns them separate vertex ranges), so a
    /// numeric collision cannot create a self-edge.
    fn invalid(&self, tx: &Transaction) -> bool {
        !tx.amount.is_finite()
            || tx.day
                < self
                    .window_end
                    .load(Ordering::Acquire)
                    .saturating_sub(self.window_days)
    }

    /// Submits one transaction. Never blocks. `Err` returns the
    /// transaction when it was shed: invalid (counted
    /// `rejected_invalid`), service unhealthy (counted `shed_unhealthy`),
    /// a full queue under [`ShedPolicy::RejectNew`] (counted), or the
    /// service shut down.
    ///
    /// Shedding is counted under two axes: *per reason* (`shed_unhealthy`
    /// / `rejected_invalid` / per-policy overflow counters) and, for
    /// overflow, the policy-independent `shed_overflow` roll-up — the
    /// counter dashboards alert on without caring which [`ShedPolicy`]
    /// is configured. `shed_overflow` always equals
    /// [`shed_total`](Telemetry::shed_total).
    pub fn submit(&self, tx: Transaction) -> Result<(), Transaction> {
        if self.invalid(&tx) {
            self.telemetry
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(tx);
        }
        if self.health.state() >= HealthState::Shedding {
            self.telemetry
                .shed_unhealthy
                .fetch_add(1, Ordering::Relaxed);
            self.observe_burst(true);
            return Err(tx);
        }
        let mut item = Submitted {
            tx,
            at: Instant::now(),
        };
        let mut shed_any = false;
        loop {
            match self.tx.try_send(item) {
                Ok(()) => {
                    self.telemetry.ingested.fetch_add(1, Ordering::Relaxed);
                    self.observe_burst(shed_any);
                    return Ok(());
                }
                Err(TrySendError::Disconnected(s)) => return Err(s.tx),
                Err(TrySendError::Full(s)) => match self.policy {
                    ShedPolicy::RejectNew => {
                        self.telemetry
                            .shed_rejected_new
                            .fetch_add(1, Ordering::Relaxed);
                        self.telemetry.shed_overflow.fetch_add(1, Ordering::Relaxed);
                        self.observe_burst(true);
                        return Err(s.tx);
                    }
                    ShedPolicy::DropOldest => {
                        // Evict the head to make room; if the batcher
                        // raced us and drained it already, just retry.
                        if self.evict.try_recv().is_ok() {
                            self.telemetry
                                .shed_dropped_oldest
                                .fetch_add(1, Ordering::Relaxed);
                            self.telemetry.shed_overflow.fetch_add(1, Ordering::Relaxed);
                            shed_any = true;
                        }
                        item = s;
                    }
                },
            }
        }
    }

    /// Feeds the burst detector one observation for this submit (no-op
    /// when detection is disabled).
    fn observe_burst(&self, shed: bool) {
        if let Some(b) = &self.burst {
            b.record(shed);
        }
    }

    /// Transactions currently queued (diagnostic).
    pub fn queued(&self) -> usize {
        self.tx.len()
    }
}

/// Drains a receiver into micro-batches.
pub struct Batcher {
    rx: Receiver<Submitted>,
    max_batch: usize,
    budget: Duration,
    burst: Option<Arc<BurstState>>,
}

/// The ingest channel closed: every gate is gone and the queue drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

impl Batcher {
    /// A batcher over `rx` with the given size cap and time budget.
    pub fn new(rx: Receiver<Submitted>, max_batch: usize, budget: Duration) -> Self {
        assert!(max_batch >= 1, "batches need at least one transaction");
        Self {
            rx,
            max_batch,
            budget,
            burst: None,
        }
    }

    /// Attaches a burst detector: while a burst is active, batches
    /// tighten to `max_batch / divisor` and `budget / divisor` so the
    /// flooded queue drains in smaller, faster steps.
    pub fn with_burst(mut self, burst: Option<Arc<BurstState>>) -> Self {
        self.burst = burst;
        self
    }

    /// The next micro-batch: waits up to the budget for a first
    /// transaction (an empty batch means an idle tick — callers loop),
    /// then drains greedily until the size cap or until the budget from
    /// the first arrival elapses with the queue empty. The shape is
    /// re-read per batch, so burst tightening takes effect on the very
    /// next batch after detection.
    pub fn next_batch(&self) -> Result<Vec<Submitted>, Closed> {
        let (max_batch, budget) = match &self.burst {
            Some(b) => b.shape(self.max_batch, self.budget),
            None => (self.max_batch, self.budget),
        };
        let first = match self.rx.recv_timeout(budget) {
            Ok(s) => s,
            Err(RecvTimeoutError::Timeout) => {
                // The queue sat empty for a full budget: a flood cannot
                // be in progress, so an idle tick is one calm window of
                // evidence toward burst recovery.
                if let Some(b) = &self.burst {
                    b.note_calm();
                }
                return Ok(Vec::new());
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Every gate dropped — there is no admission left to
                // protect, so a lingering burst overlay would only
                // misreport the final health.
                if let Some(b) = &self.burst {
                    b.force_clear();
                }
                return Err(Closed);
            }
        };
        let deadline = Instant::now() + budget;
        let mut batch = Vec::with_capacity(max_batch.min(64));
        batch.push(first);
        while batch.len() < max_batch {
            match self.rx.try_recv() {
                Ok(s) => batch.push(s),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match self.rx.recv_timeout(deadline - now) {
                        Ok(s) => batch.push(s),
                        Err(_) => break,
                    }
                }
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthThresholds;

    fn tx(day: u32) -> Transaction {
        Transaction {
            buyer: 1,
            item: 2,
            day,
            amount: 1.0,
        }
    }

    fn pair(
        capacity: usize,
        policy: ShedPolicy,
    ) -> (IngestGate, Receiver<Submitted>, Arc<Telemetry>) {
        let t = Arc::new(Telemetry::new());
        let health = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: 2,
            down_after: 4,
        }));
        let (gate, rx) = ingest_pair(
            capacity,
            policy,
            10,
            Arc::new(AtomicU32::new(0)),
            health,
            Arc::clone(&t),
            None,
        );
        (gate, rx, t)
    }

    fn burst_pair(
        capacity: usize,
        policy: ShedPolicy,
        cfg: &ServeConfig,
    ) -> (IngestGate, Receiver<Submitted>, Arc<Telemetry>) {
        let t = Arc::new(Telemetry::new());
        let health = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: 2,
            down_after: 4,
        }));
        let burst = BurstState::from_config(cfg, Arc::clone(&health), Arc::clone(&t));
        let (gate, rx) = ingest_pair(
            capacity,
            policy,
            10,
            Arc::new(AtomicU32::new(0)),
            health,
            Arc::clone(&t),
            burst,
        );
        (gate, rx, t)
    }

    #[test]
    fn invalid_transactions_are_shed_and_counted() {
        let (gate, _rx, t) = pair(16, ShedPolicy::RejectNew);
        let nan = Transaction {
            amount: f32::NAN,
            ..tx(0)
        };
        let inf = Transaction {
            amount: f32::INFINITY,
            ..tx(0)
        };
        assert!(gate.submit(nan).is_err());
        assert!(gate.submit(inf).is_err());
        assert_eq!(t.rejected_invalid.load(Ordering::Relaxed), 2);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 0);
        // Valid traffic still flows — including buyer == item, which is
        // a namespace collision, not a self-edge (ids are bipartite).
        assert!(gate.submit(tx(0)).is_ok());
        let collision = Transaction {
            buyer: 7,
            item: 7,
            day: 0,
            amount: 1.0,
        };
        assert!(gate.submit(collision).is_ok());
    }

    #[test]
    fn day_regressions_beyond_the_window_are_shed() {
        let (gate, _rx, t) = pair(16, ShedPolicy::RejectNew);
        // Window [15, 25): a day-10 transaction could only corrupt
        // already-expired history.
        gate.window_end.store(25, Ordering::Release);
        assert!(gate.submit(tx(10)).is_err());
        assert_eq!(t.rejected_invalid.load(Ordering::Relaxed), 1);
        // In-window (even if for a closed batch day) passes the gate —
        // the apply-side validation is authoritative for those.
        assert!(gate.submit(tx(20)).is_ok());
        assert!(gate.submit(tx(24)).is_ok());
    }

    #[test]
    fn unhealthy_gate_sheds_counted() {
        let (gate, _rx, t) = pair(16, ShedPolicy::RejectNew);
        gate.health.record_crash("w", "p1");
        assert!(gate.submit(tx(0)).is_ok(), "Degraded still ingests");
        gate.health.record_crash("w", "p2");
        assert!(gate.submit(tx(0)).is_err(), "Shedding refuses");
        assert_eq!(t.shed_unhealthy.load(Ordering::Relaxed), 1);
        gate.health.record_progress("w");
        assert!(gate.submit(tx(0)).is_ok(), "recovery reopens the gate");
    }

    #[test]
    fn reject_new_counts_and_returns_the_transaction() {
        let (gate, _rx, t) = pair(2, ShedPolicy::RejectNew);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        let rejected = gate.submit(tx(2)).unwrap_err();
        assert_eq!(rejected.day, 2);
        assert_eq!(t.shed_rejected_new.load(Ordering::Relaxed), 1);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 2);
        assert_eq!(gate.queued(), 2);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_and_counts() {
        let (gate, rx, t) = pair(2, ShedPolicy::DropOldest);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        gate.submit(tx(2)).unwrap(); // evicts day 0
        assert_eq!(t.shed_dropped_oldest.load(Ordering::Relaxed), 1);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 3);
        let days: Vec<u32> = (0..2).map(|_| rx.try_recv().unwrap().tx.day).collect();
        assert_eq!(days, vec![1, 2]);
    }

    #[test]
    fn shed_overflow_rolls_up_both_policies() {
        // RejectNew: every overflow bumps shed_overflow with the
        // per-policy counter.
        let (gate, _rx, t) = pair(2, ShedPolicy::RejectNew);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        assert!(gate.submit(tx(2)).is_err());
        assert_eq!(t.shed_overflow.load(Ordering::Relaxed), 1);
        assert_eq!(t.shed_overflow.load(Ordering::Relaxed), t.shed_total());
        // DropOldest: likewise, and only when an eviction actually
        // happened.
        let (gate, _rx, t) = pair(2, ShedPolicy::DropOldest);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        gate.submit(tx(2)).unwrap();
        gate.submit(tx(3)).unwrap();
        assert_eq!(t.shed_overflow.load(Ordering::Relaxed), 2);
        assert_eq!(t.shed_overflow.load(Ordering::Relaxed), t.shed_total());
    }

    #[test]
    fn burst_detector_enters_counts_and_recovers_with_hysteresis() {
        let cfg = ServeConfig {
            burst_window: 10,
            burst_shed_threshold: 0.5,
            burst_recover_threshold: 0.2,
            burst_recovery_windows: 2,
            burst_batch_divisor: 4,
            ..ServeConfig::default()
        };
        // Capacity 2 with no consumer: the third submit onward sheds.
        let (gate, rx, t) = burst_pair(2, ShedPolicy::DropOldest, &cfg);
        let burst = gate.burst.as_ref().unwrap().clone();
        assert!(!burst.active());
        // Window 1: 2 accepts + 8 evictions = 80% shed rate -> burst.
        for d in 0..10 {
            gate.submit(tx(d)).unwrap();
        }
        assert!(burst.active(), "80% shed rate must trip the detector");
        assert_eq!(t.bursts_detected.load(Ordering::Relaxed), 1);
        assert!(gate.health.burst_overlay());
        // The batcher tightens: cap 8 becomes 8/4 = 2 while active.
        let b = Batcher::new(rx.clone(), 8, Duration::from_millis(50))
            .with_burst(Some(Arc::clone(&burst)));
        assert_eq!(b.next_batch().unwrap().len(), 2);
        // One calm window is not enough to recover (hysteresis)...
        while rx.try_recv().is_ok() {}
        for d in 0..10 {
            gate.submit(tx(d)).unwrap();
            let _ = rx.try_recv(); // consumer keeps up: no sheds
        }
        assert!(burst.active(), "one calm window must not recover");
        // ...the second consecutive calm window is.
        for d in 0..10 {
            gate.submit(tx(d)).unwrap();
            let _ = rx.try_recv();
        }
        assert!(!burst.active(), "two calm windows recover");
        assert!(!gate.health.burst_overlay());
        assert_eq!(
            t.bursts_detected.load(Ordering::Relaxed),
            1,
            "recovery does not recount"
        );
    }

    #[test]
    fn burst_mode_does_not_change_admission() {
        // The same offered schedule yields the same accepted sequence
        // with detection on and off — burst mode only reshapes batches.
        let cfg = ServeConfig {
            burst_window: 4,
            burst_shed_threshold: 0.25,
            burst_recover_threshold: 0.1,
            burst_recovery_windows: 1,
            burst_batch_divisor: 8,
            ..ServeConfig::default()
        };
        let run = |with_burst: bool| -> Vec<u32> {
            let (gate, rx, _t) = if with_burst {
                burst_pair(3, ShedPolicy::DropOldest, &cfg)
            } else {
                pair(3, ShedPolicy::DropOldest)
            };
            let mut accepted = Vec::new();
            for d in 0..9 {
                if gate.submit(tx(d)).is_ok() {
                    // Drain every third submit so the queue oscillates.
                    if d % 3 == 2 {
                        while let Ok(s) = rx.try_recv() {
                            accepted.push(s.tx.day);
                        }
                    }
                }
            }
            while let Ok(s) = rx.try_recv() {
                accepted.push(s.tx.day);
            }
            accepted
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn batcher_caps_by_count() {
        let (gate, rx, _t) = pair(16, ShedPolicy::RejectNew);
        for d in 0..10 {
            gate.submit(tx(d)).unwrap();
        }
        let b = Batcher::new(rx, 4, Duration::from_millis(50));
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(b.next_batch().unwrap().len(), 4);
        assert_eq!(b.next_batch().unwrap().len(), 2);
    }

    #[test]
    fn batcher_idle_tick_is_empty_and_closure_is_reported() {
        let (gate, rx, _t) = pair(4, ShedPolicy::RejectNew);
        let b = Batcher::new(rx, 4, Duration::from_millis(5));
        assert!(b.next_batch().unwrap().is_empty());
        drop(gate);
        assert!(matches!(b.next_batch(), Err(Closed)));
    }
}
