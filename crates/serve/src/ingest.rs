//! The ingest stage: a bounded queue with explicit backpressure in front
//! of a micro-batcher.
//!
//! Producers submit transactions through [`IngestGate`]; the queue bound
//! is the service's only buffer, so overload is confronted immediately at
//! the door and handled by the configured [`ShedPolicy`] — **counted**,
//! never silent, and never by blocking the producer. The batch loop
//! drains the queue into micro-batches shaped by both a size cap and a
//! time budget: under load batches fill to `max_batch` (amortizing the
//! window lock), when traffic is thin the budget bounds how long a lone
//! transaction waits before it is applied.

use crate::config::ShedPolicy;
use crate::telemetry::Telemetry;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use glp_fraud::Transaction;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A transaction stamped at submission, so the batcher can charge the
/// full queue wait to the ingest-lag histogram.
#[derive(Clone, Copy, Debug)]
pub struct Submitted {
    /// The transaction itself.
    pub tx: Transaction,
    /// When the producer handed it over.
    pub at: Instant,
}

/// Creates the ingest pair: the producer-facing gate and the
/// batcher-facing drain.
pub fn ingest_pair(
    capacity: usize,
    policy: ShedPolicy,
    telemetry: Arc<Telemetry>,
) -> (IngestGate, Receiver<Submitted>) {
    let (tx, rx) = bounded(capacity);
    (
        IngestGate {
            tx,
            evict: rx.clone(),
            policy,
            telemetry,
        },
        rx,
    )
}

/// Producer-facing submission point. Cloneable; one per producer thread.
#[derive(Clone)]
pub struct IngestGate {
    tx: Sender<Submitted>,
    /// Second receiver on the same queue, used only to evict under
    /// [`ShedPolicy::DropOldest`] (the queue is MPMC, so eviction is just
    /// a competing consumer).
    evict: Receiver<Submitted>,
    policy: ShedPolicy,
    telemetry: Arc<Telemetry>,
}

impl IngestGate {
    /// Submits one transaction. Never blocks. `Err` returns the
    /// transaction when it was rejected ([`ShedPolicy::RejectNew`] with a
    /// full queue, or the service is shut down).
    pub fn submit(&self, tx: Transaction) -> Result<(), Transaction> {
        let mut item = Submitted {
            tx,
            at: Instant::now(),
        };
        loop {
            match self.tx.try_send(item) {
                Ok(()) => {
                    self.telemetry.ingested.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(TrySendError::Disconnected(s)) => return Err(s.tx),
                Err(TrySendError::Full(s)) => match self.policy {
                    ShedPolicy::RejectNew => {
                        self.telemetry
                            .shed_rejected_new
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(s.tx);
                    }
                    ShedPolicy::DropOldest => {
                        // Evict the head to make room; if the batcher
                        // raced us and drained it already, just retry.
                        if self.evict.try_recv().is_ok() {
                            self.telemetry
                                .shed_dropped_oldest
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        item = s;
                    }
                },
            }
        }
    }

    /// Transactions currently queued (diagnostic).
    pub fn queued(&self) -> usize {
        self.tx.len()
    }
}

/// Drains a receiver into micro-batches.
pub struct Batcher {
    rx: Receiver<Submitted>,
    max_batch: usize,
    budget: Duration,
}

/// The ingest channel closed: every gate is gone and the queue drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

impl Batcher {
    /// A batcher over `rx` with the given size cap and time budget.
    pub fn new(rx: Receiver<Submitted>, max_batch: usize, budget: Duration) -> Self {
        assert!(max_batch >= 1, "batches need at least one transaction");
        Self {
            rx,
            max_batch,
            budget,
        }
    }

    /// The next micro-batch: waits up to the budget for a first
    /// transaction (an empty batch means an idle tick — callers loop),
    /// then drains greedily until the size cap or until the budget from
    /// the first arrival elapses with the queue empty.
    pub fn next_batch(&self) -> Result<Vec<Submitted>, Closed> {
        let first = match self.rx.recv_timeout(self.budget) {
            Ok(s) => s,
            Err(RecvTimeoutError::Timeout) => return Ok(Vec::new()),
            Err(RecvTimeoutError::Disconnected) => return Err(Closed),
        };
        let deadline = Instant::now() + self.budget;
        let mut batch = Vec::with_capacity(self.max_batch.min(64));
        batch.push(first);
        while batch.len() < self.max_batch {
            match self.rx.try_recv() {
                Ok(s) => batch.push(s),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match self.rx.recv_timeout(deadline - now) {
                        Ok(s) => batch.push(s),
                        Err(_) => break,
                    }
                }
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(day: u32) -> Transaction {
        Transaction {
            buyer: 1,
            item: 2,
            day,
            amount: 1.0,
        }
    }

    fn pair(
        capacity: usize,
        policy: ShedPolicy,
    ) -> (IngestGate, Receiver<Submitted>, Arc<Telemetry>) {
        let t = Arc::new(Telemetry::new());
        let (gate, rx) = ingest_pair(capacity, policy, Arc::clone(&t));
        (gate, rx, t)
    }

    #[test]
    fn reject_new_counts_and_returns_the_transaction() {
        let (gate, _rx, t) = pair(2, ShedPolicy::RejectNew);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        let rejected = gate.submit(tx(2)).unwrap_err();
        assert_eq!(rejected.day, 2);
        assert_eq!(t.shed_rejected_new.load(Ordering::Relaxed), 1);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 2);
        assert_eq!(gate.queued(), 2);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_and_counts() {
        let (gate, rx, t) = pair(2, ShedPolicy::DropOldest);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        gate.submit(tx(2)).unwrap(); // evicts day 0
        assert_eq!(t.shed_dropped_oldest.load(Ordering::Relaxed), 1);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 3);
        let days: Vec<u32> = (0..2).map(|_| rx.try_recv().unwrap().tx.day).collect();
        assert_eq!(days, vec![1, 2]);
    }

    #[test]
    fn batcher_caps_by_count() {
        let (gate, rx, _t) = pair(16, ShedPolicy::RejectNew);
        for d in 0..10 {
            gate.submit(tx(d)).unwrap();
        }
        let b = Batcher::new(rx, 4, Duration::from_millis(50));
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(b.next_batch().unwrap().len(), 4);
        assert_eq!(b.next_batch().unwrap().len(), 2);
    }

    #[test]
    fn batcher_idle_tick_is_empty_and_closure_is_reported() {
        let (gate, rx, _t) = pair(4, ShedPolicy::RejectNew);
        let b = Batcher::new(rx, 4, Duration::from_millis(5));
        assert!(b.next_batch().unwrap().is_empty());
        drop(gate);
        assert!(matches!(b.next_batch(), Err(Closed)));
    }
}
