//! The ingest stage: a bounded queue with explicit backpressure in front
//! of a micro-batcher.
//!
//! Producers submit transactions through [`IngestGate`]; the queue bound
//! is the service's only buffer, so overload is confronted immediately at
//! the door and handled by the configured [`ShedPolicy`] — **counted**,
//! never silent, and never by blocking the producer. The batch loop
//! drains the queue into micro-batches shaped by both a size cap and a
//! time budget: under load batches fill to `max_batch` (amortizing the
//! window lock), when traffic is thin the budget bounds how long a lone
//! transaction waits before it is applied.

use crate::config::ShedPolicy;
use crate::health::{HealthMonitor, HealthState};
use crate::telemetry::Telemetry;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use glp_fraud::Transaction;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A transaction stamped at submission, so the batcher can charge the
/// full queue wait to the ingest-lag histogram.
#[derive(Clone, Copy, Debug)]
pub struct Submitted {
    /// The transaction itself.
    pub tx: Transaction,
    /// When the producer handed it over.
    pub at: Instant,
}

/// Creates the ingest pair: the producer-facing gate and the
/// batcher-facing drain. `window_days` and the `window_end` watermark
/// (maintained by the apply path) bound the day-regression check; the
/// health monitor closes the gate while the service is
/// [`Shedding`](HealthState::Shedding) or worse.
pub fn ingest_pair(
    capacity: usize,
    policy: ShedPolicy,
    window_days: u32,
    window_end: Arc<AtomicU32>,
    health: Arc<HealthMonitor>,
    telemetry: Arc<Telemetry>,
) -> (IngestGate, Receiver<Submitted>) {
    let (tx, rx) = bounded(capacity);
    (
        IngestGate {
            tx,
            evict: rx.clone(),
            policy,
            window_days,
            window_end,
            health,
            telemetry,
        },
        rx,
    )
}

/// Producer-facing submission point. Cloneable; one per producer thread.
#[derive(Clone)]
pub struct IngestGate {
    tx: Sender<Submitted>,
    /// Second receiver on the same queue, used only to evict under
    /// [`ShedPolicy::DropOldest`] (the queue is MPMC, so eviction is just
    /// a competing consumer).
    evict: Receiver<Submitted>,
    policy: ShedPolicy,
    window_days: u32,
    /// Watermark of the window's exclusive end day, maintained by the
    /// apply path. Only ever increases, so a slightly stale read makes
    /// the gate's day check *more permissive* — the apply-side validation
    /// remains authoritative.
    window_end: Arc<AtomicU32>,
    health: Arc<HealthMonitor>,
    telemetry: Arc<Telemetry>,
}

impl IngestGate {
    /// Whether `tx` is obviously malformed: a non-finite amount, or a
    /// day regression beyond the live window (it could only corrupt
    /// history that has already expired). Note that `buyer == item` is
    /// *not* malformed — buyer and item ids live in disjoint namespaces
    /// (the bipartite build assigns them separate vertex ranges), so a
    /// numeric collision cannot create a self-edge.
    fn invalid(&self, tx: &Transaction) -> bool {
        !tx.amount.is_finite()
            || tx.day
                < self
                    .window_end
                    .load(Ordering::Acquire)
                    .saturating_sub(self.window_days)
    }

    /// Submits one transaction. Never blocks. `Err` returns the
    /// transaction when it was shed: invalid (counted
    /// `rejected_invalid`), service unhealthy (counted `shed_unhealthy`),
    /// a full queue under [`ShedPolicy::RejectNew`] (counted), or the
    /// service shut down.
    pub fn submit(&self, tx: Transaction) -> Result<(), Transaction> {
        if self.invalid(&tx) {
            self.telemetry
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(tx);
        }
        if self.health.state() >= HealthState::Shedding {
            self.telemetry
                .shed_unhealthy
                .fetch_add(1, Ordering::Relaxed);
            return Err(tx);
        }
        let mut item = Submitted {
            tx,
            at: Instant::now(),
        };
        loop {
            match self.tx.try_send(item) {
                Ok(()) => {
                    self.telemetry.ingested.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(TrySendError::Disconnected(s)) => return Err(s.tx),
                Err(TrySendError::Full(s)) => match self.policy {
                    ShedPolicy::RejectNew => {
                        self.telemetry
                            .shed_rejected_new
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(s.tx);
                    }
                    ShedPolicy::DropOldest => {
                        // Evict the head to make room; if the batcher
                        // raced us and drained it already, just retry.
                        if self.evict.try_recv().is_ok() {
                            self.telemetry
                                .shed_dropped_oldest
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        item = s;
                    }
                },
            }
        }
    }

    /// Transactions currently queued (diagnostic).
    pub fn queued(&self) -> usize {
        self.tx.len()
    }
}

/// Drains a receiver into micro-batches.
pub struct Batcher {
    rx: Receiver<Submitted>,
    max_batch: usize,
    budget: Duration,
}

/// The ingest channel closed: every gate is gone and the queue drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

impl Batcher {
    /// A batcher over `rx` with the given size cap and time budget.
    pub fn new(rx: Receiver<Submitted>, max_batch: usize, budget: Duration) -> Self {
        assert!(max_batch >= 1, "batches need at least one transaction");
        Self {
            rx,
            max_batch,
            budget,
        }
    }

    /// The next micro-batch: waits up to the budget for a first
    /// transaction (an empty batch means an idle tick — callers loop),
    /// then drains greedily until the size cap or until the budget from
    /// the first arrival elapses with the queue empty.
    pub fn next_batch(&self) -> Result<Vec<Submitted>, Closed> {
        let first = match self.rx.recv_timeout(self.budget) {
            Ok(s) => s,
            Err(RecvTimeoutError::Timeout) => return Ok(Vec::new()),
            Err(RecvTimeoutError::Disconnected) => return Err(Closed),
        };
        let deadline = Instant::now() + self.budget;
        let mut batch = Vec::with_capacity(self.max_batch.min(64));
        batch.push(first);
        while batch.len() < self.max_batch {
            match self.rx.try_recv() {
                Ok(s) => batch.push(s),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match self.rx.recv_timeout(deadline - now) {
                        Ok(s) => batch.push(s),
                        Err(_) => break,
                    }
                }
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthThresholds;

    fn tx(day: u32) -> Transaction {
        Transaction {
            buyer: 1,
            item: 2,
            day,
            amount: 1.0,
        }
    }

    fn pair(
        capacity: usize,
        policy: ShedPolicy,
    ) -> (IngestGate, Receiver<Submitted>, Arc<Telemetry>) {
        let t = Arc::new(Telemetry::new());
        let health = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: 2,
            down_after: 4,
        }));
        let (gate, rx) = ingest_pair(
            capacity,
            policy,
            10,
            Arc::new(AtomicU32::new(0)),
            health,
            Arc::clone(&t),
        );
        (gate, rx, t)
    }

    #[test]
    fn invalid_transactions_are_shed_and_counted() {
        let (gate, _rx, t) = pair(16, ShedPolicy::RejectNew);
        let nan = Transaction {
            amount: f32::NAN,
            ..tx(0)
        };
        let inf = Transaction {
            amount: f32::INFINITY,
            ..tx(0)
        };
        assert!(gate.submit(nan).is_err());
        assert!(gate.submit(inf).is_err());
        assert_eq!(t.rejected_invalid.load(Ordering::Relaxed), 2);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 0);
        // Valid traffic still flows — including buyer == item, which is
        // a namespace collision, not a self-edge (ids are bipartite).
        assert!(gate.submit(tx(0)).is_ok());
        let collision = Transaction {
            buyer: 7,
            item: 7,
            day: 0,
            amount: 1.0,
        };
        assert!(gate.submit(collision).is_ok());
    }

    #[test]
    fn day_regressions_beyond_the_window_are_shed() {
        let (gate, _rx, t) = pair(16, ShedPolicy::RejectNew);
        // Window [15, 25): a day-10 transaction could only corrupt
        // already-expired history.
        gate.window_end.store(25, Ordering::Release);
        assert!(gate.submit(tx(10)).is_err());
        assert_eq!(t.rejected_invalid.load(Ordering::Relaxed), 1);
        // In-window (even if for a closed batch day) passes the gate —
        // the apply-side validation is authoritative for those.
        assert!(gate.submit(tx(20)).is_ok());
        assert!(gate.submit(tx(24)).is_ok());
    }

    #[test]
    fn unhealthy_gate_sheds_counted() {
        let (gate, _rx, t) = pair(16, ShedPolicy::RejectNew);
        gate.health.record_crash("w", "p1");
        assert!(gate.submit(tx(0)).is_ok(), "Degraded still ingests");
        gate.health.record_crash("w", "p2");
        assert!(gate.submit(tx(0)).is_err(), "Shedding refuses");
        assert_eq!(t.shed_unhealthy.load(Ordering::Relaxed), 1);
        gate.health.record_progress("w");
        assert!(gate.submit(tx(0)).is_ok(), "recovery reopens the gate");
    }

    #[test]
    fn reject_new_counts_and_returns_the_transaction() {
        let (gate, _rx, t) = pair(2, ShedPolicy::RejectNew);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        let rejected = gate.submit(tx(2)).unwrap_err();
        assert_eq!(rejected.day, 2);
        assert_eq!(t.shed_rejected_new.load(Ordering::Relaxed), 1);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 2);
        assert_eq!(gate.queued(), 2);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_and_counts() {
        let (gate, rx, t) = pair(2, ShedPolicy::DropOldest);
        gate.submit(tx(0)).unwrap();
        gate.submit(tx(1)).unwrap();
        gate.submit(tx(2)).unwrap(); // evicts day 0
        assert_eq!(t.shed_dropped_oldest.load(Ordering::Relaxed), 1);
        assert_eq!(t.ingested.load(Ordering::Relaxed), 3);
        let days: Vec<u32> = (0..2).map(|_| rx.try_recv().unwrap().tx.day).collect();
        assert_eq!(days, vec![1, 2]);
    }

    #[test]
    fn batcher_caps_by_count() {
        let (gate, rx, _t) = pair(16, ShedPolicy::RejectNew);
        for d in 0..10 {
            gate.submit(tx(d)).unwrap();
        }
        let b = Batcher::new(rx, 4, Duration::from_millis(50));
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(b.next_batch().unwrap().len(), 4);
        assert_eq!(b.next_batch().unwrap().len(), 2);
    }

    #[test]
    fn batcher_idle_tick_is_empty_and_closure_is_reported() {
        let (gate, rx, _t) = pair(4, ShedPolicy::RejectNew);
        let b = Batcher::new(rx, 4, Duration::from_millis(5));
        assert!(b.next_batch().unwrap().is_empty());
        drop(gate);
        assert!(matches!(b.next_batch(), Err(Closed)));
    }
}
