//! The cross-shard label exchange: reconciling boundary vertices so a
//! sharded fleet's verdicts are byte-identical to a single core's.
//!
//! Sharding partitions the *buyers*; items cannot be partitioned (any
//! buyer can touch any item), so an item purchased from two shards
//! creates a **boundary component** — a connected piece of the
//! user–item graph whose user set spans shards. Label propagation on
//! one shard alone would under-propagate through such components.
//!
//! The exchange fixes exactly those components, and nothing else:
//!
//! 1. Each shard contributes a [`ShardFrame`]: its window log with the
//!    router's fleet-wide sequence stamps.
//! 2. A union-find over every frame's `(buyer, item)` edges finds the
//!    connected components of the union graph, and a component is
//!    *spanning* when its users live on two or more shards.
//! 3. The spanning components' transactions are merged back into global
//!    arrival order by sequence stamp and reclustered as one graph —
//!    the same seeded/weighted LP + scoring as everywhere else.
//! 4. The fleet snapshot keeps every shard's *local* verdict for users
//!    of non-spanning components (those components are wholly contained
//!    in one shard, where local LP already equals the reference) and
//!    replaces the verdicts of boundary users with the merged run's.
//!
//! Correctness leans on three invariants established elsewhere: shard
//! windows expire on the fleet watermark (so each shard log is exactly
//! the reference log restricted to its keyspace), LP grouping is
//! invariant under order-preserving vertex relabeling (so a sub-log
//! containing *all* of a component's transactions clusters it exactly
//! as the full log does), and published cluster labels are the minimum
//! member user id (canonical across any window numbering). Together:
//! `reconcile` over N shards is byte-identical to one
//! [`ServiceCore`](crate::service::ServiceCore) over the same stream —
//! pinned end to end in `tests/determinism.rs`.

use crate::config::ServeConfig;
use crate::query::VerdictSnapshot;
use crate::recluster::{ReclusterOutcome, ReclusterRequest, ReclusterRun, WarmState};
use glp_core::{LpRunReport, ResilienceReport};
use glp_fraud::{IncrementalWindow, Transaction, WindowWorkload};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// One shard's contribution to an exchange round: its window log in
/// order, each transaction with its fleet-wide sequence stamp.
#[derive(Clone, Debug)]
pub struct ShardFrame {
    /// Shard index in the fleet.
    pub shard: usize,
    /// Window length in days (equal across the fleet).
    pub days: u32,
    /// The shard's window end (the fleet watermark).
    pub end: u32,
    /// `(sequence stamp, transaction)` in log order; stamps ascend.
    pub txs: Vec<(u64, Transaction)>,
}

/// What one exchange round found and did.
#[derive(Clone, Debug, Default)]
pub struct ExchangeReport {
    /// Connected components whose users span two or more shards.
    pub spanning_components: usize,
    /// Users in spanning components (their verdicts came from the
    /// merged boundary run, not their home shard).
    pub boundary_users: usize,
    /// Items shared by spanning components.
    pub boundary_items: usize,
    /// Transactions merged into the boundary recluster.
    pub boundary_txs: usize,
}

impl ExchangeReport {
    /// The report as JSON (for fleet telemetry export).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "spanning_components": self.spanning_components,
            "boundary_users": self.boundary_users,
            "boundary_items": self.boundary_items,
            "boundary_txs": self.boundary_txs,
        })
    }
}

/// The fleet-wide scoring an exchange round publishes: one merged
/// snapshot covering every shard's keyspace, plus the boundary user set
/// (sorted) so the query path knows which users *must* be answered from
/// here rather than from their home shard.
#[derive(Clone, Debug, Default)]
pub struct FleetSnapshot {
    /// The reconciled, fleet-wide verdict snapshot.
    pub verdicts: Arc<VerdictSnapshot>,
    /// Users of spanning components, ascending.
    pub boundary_users: Vec<u32>,
}

/// The full outcome of [`reconcile`] / [`reconcile_with`].
pub struct Reconciled {
    /// The fleet-wide snapshot (all shards' keyspaces merged).
    pub snapshot: VerdictSnapshot,
    /// Users of spanning components, ascending.
    pub boundary_users: Vec<u32>,
    /// What the round found.
    pub report: ExchangeReport,
    /// What the boundary recluster ran (mode, wall, frontier), when one
    /// was needed (`None` when no component spans shards).
    pub boundary_run: Option<ReclusterRun>,
    /// The boundary recluster's LP run, when one was needed (`None`
    /// when no component spans shards).
    pub lp: Option<(LpRunReport, ResilienceReport)>,
}

/// Carry-over state that lets consecutive exchange rounds recluster the
/// boundary graph *incrementally*: a shadow [`IncrementalWindow`] fed
/// exactly the merged spanning transactions (with their sequence stamps
/// mirrored, expiry-aligned like a shard's), plus the warm-start memo of
/// the previous boundary run. [`reconcile_with`] goes incremental only
/// when the previous round's stamps are a strict prefix of this round's
/// merged log — membership changes (a component newly spanning shards
/// injects *old* stamps) or expiry break the prefix and force a cache
/// rebuild plus a full boundary recluster, keeping the published bytes
/// identical to the uncached path.
pub struct BoundaryCache {
    seqs: VecDeque<u64>,
    window: IncrementalWindow,
    warm: WarmState,
}

impl BoundaryCache {
    /// An empty cache for a fleet with `days`-day windows: the first
    /// exchange through it reclusters the boundary from scratch.
    pub fn new(days: u32) -> Self {
        Self {
            seqs: VecDeque::new(),
            window: IncrementalWindow::empty(days),
            warm: WarmState::default(),
        }
    }

    /// Runs the boundary recluster over `merged` (seq-sorted spanning
    /// transactions; `txs` is its transaction column), incrementally
    /// when this cache's previous round is a prefix of it.
    #[allow(clippy::too_many_arguments)]
    fn recluster(
        &mut self,
        merged: &[(u64, Transaction)],
        txs: &[Transaction],
        days: u32,
        cfg: &ServeConfig,
        blacklist: &[u32],
        global_end: u32,
        as_of: u64,
    ) -> ReclusterOutcome {
        // Stamps are unique fleet-wide, so a matching stamp is the same
        // transaction: prefix equality means this round's merged log
        // extends last round's cached log verbatim. The day check keeps
        // `apply_batch`'s monotonicity invariant (a violating suffix can
        // only come from a membership change the stamp check missed —
        // e.g. a rebuilt cache mid-history).
        let prefix_ok = self.window.days() == days
            && self.seqs.len() <= merged.len()
            && self.seqs.iter().zip(merged).all(|(&a, &(b, _))| a == b)
            && merged[self.seqs.len()..]
                .iter()
                .all(|&(_, t)| t.day + 1 >= self.window.end());
        if prefix_ok {
            let suffix = &merged[self.seqs.len()..];
            let add: Vec<Transaction> = suffix.iter().map(|&(_, t)| t).collect();
            self.window.apply_batch(&add);
            self.window.advance_to(global_end);
            for &(s, _) in suffix {
                self.seqs.push_back(s);
            }
            while self.seqs.len() > self.window.num_transactions() {
                self.seqs.pop_front();
            }
        } else {
            match IncrementalWindow::from_parts(days, global_end, txs.to_vec()) {
                Ok(w) => {
                    self.window = w;
                    self.seqs = merged.iter().map(|&(s, _)| s).collect();
                    self.warm = WarmState::default();
                }
                Err(_) => {
                    // A merged log violating the window invariants cannot
                    // be cached; recluster from scratch without one.
                    *self = Self::new(days);
                    let workload = WindowWorkload::from_transactions(days, txs.iter());
                    return ReclusterRequest::full(&workload, blacklist, cfg)
                        .stamped(as_of, global_end)
                        .run();
                }
            }
        }
        let (workload, delta) = self.window.materialize_delta();
        self.warm
            .run(&workload, blacklist, cfg, &delta, as_of, global_end, None)
    }
}

/// Union-find keys: users and items share one id space, disjoint by a
/// high tag bit.
fn user_key(u: u32) -> u64 {
    u64::from(u)
}
fn item_key(i: u32) -> u64 {
    (1u64 << 32) | u64::from(i)
}

/// Plain iterative union-find with path halving.
struct Dsu {
    index: HashMap<u64, usize>,
    parent: Vec<usize>,
}

impl Dsu {
    fn new() -> Self {
        Self {
            index: HashMap::new(),
            parent: Vec::new(),
        }
    }

    fn id(&mut self, key: u64) -> usize {
        let next = self.parent.len();
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                self.parent.push(next);
                next
            }
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Reconciles one exchange round (see module docs). `locals` is each
/// shard's freshest local snapshot, indexed like `frames`; both must
/// describe the same quiesced window state (the callers —
/// [`FleetCore::exchange_now`](crate::router::FleetCore::exchange_now)
/// and shutdown — recluster every live shard immediately before
/// framing). `global_end` is the fleet watermark and `as_of` the fleet
/// batch clock, stamped into the snapshot.
pub fn reconcile(
    frames: &[ShardFrame],
    locals: &[Arc<VerdictSnapshot>],
    cfg: &ServeConfig,
    blacklist: &[u32],
    global_end: u32,
    as_of: u64,
) -> Reconciled {
    reconcile_with(frames, locals, cfg, blacklist, global_end, as_of, None)
}

/// [`reconcile`] with an optional [`BoundaryCache`]: when the cache's
/// previous round is a prefix of this one, the boundary recluster runs
/// incrementally from the cached memo — byte-identical to the uncached
/// round by the same replay guarantee as everywhere else.
#[allow(clippy::too_many_arguments)]
pub fn reconcile_with(
    frames: &[ShardFrame],
    locals: &[Arc<VerdictSnapshot>],
    cfg: &ServeConfig,
    blacklist: &[u32],
    global_end: u32,
    as_of: u64,
    cache: Option<&mut BoundaryCache>,
) -> Reconciled {
    assert_eq!(frames.len(), locals.len(), "one local snapshot per frame");

    // Pass 1: connected components of the union graph.
    let mut dsu = Dsu::new();
    for f in frames {
        for &(_, t) in &f.txs {
            let (u, i) = (dsu.id(user_key(t.buyer)), dsu.id(item_key(t.item)));
            dsu.union(u, i);
        }
    }

    // Pass 2: which components' users span two or more shards. A user
    // appears only on the shard that owns it, so the user's frame is
    // its shard.
    let mut shards_of_root: HashMap<usize, (usize, bool)> = HashMap::new();
    for f in frames {
        for &(_, t) in &f.txs {
            let id = dsu.id(user_key(t.buyer));
            let root = dsu.find(id);
            let e = shards_of_root.entry(root).or_insert((f.shard, false));
            if e.0 != f.shard {
                e.1 = true; // a second shard touched this component
            }
        }
    }
    let spanning: HashSet<usize> = shards_of_root
        .iter()
        .filter(|(_, &(_, multi))| multi)
        .map(|(&root, _)| root)
        .collect();

    // Pass 3: collect the spanning components' transactions and merge
    // them back into global arrival order by sequence stamp. The
    // day-monotone apply filter made accepted days non-decreasing in
    // stamp order, so the merged log is day-sorted like any real log.
    let mut boundary_users: HashSet<u32> = HashSet::new();
    let mut boundary_items: HashSet<u32> = HashSet::new();
    let mut merged: Vec<(u64, Transaction)> = Vec::new();
    for f in frames {
        for &(seq, t) in &f.txs {
            let id = dsu.id(user_key(t.buyer));
            if spanning.contains(&dsu.find(id)) {
                boundary_users.insert(t.buyer);
                boundary_items.insert(t.item);
                merged.push((seq, t));
            }
        }
    }
    merged.sort_unstable_by_key(|&(seq, _)| seq);

    let report = ExchangeReport {
        spanning_components: spanning.len(),
        boundary_users: boundary_users.len(),
        boundary_items: boundary_items.len(),
        boundary_txs: merged.len(),
    };

    // Pass 4: recluster the merged boundary graph (when there is one).
    let days = frames.first().map_or(cfg.window_days, |f| f.days);
    let (boundary_snapshot, boundary_run, lp) = if merged.is_empty() {
        (None, None, None)
    } else {
        let started = Instant::now();
        let txs: Vec<Transaction> = merged.iter().map(|&(_, t)| t).collect();
        let outcome = match cache {
            Some(c) => c.recluster(&merged, &txs, days, cfg, blacklist, global_end, as_of),
            None => {
                let workload = WindowWorkload::from_transactions(days, txs.iter());
                ReclusterRequest::full(&workload, blacklist, cfg)
                    .stamped(as_of, global_end)
                    .run()
            }
        };
        let run = outcome.as_run(started.elapsed().as_secs_f64());
        (
            Some(outcome.snapshot),
            Some(run),
            Some((outcome.report, outcome.resilience)),
        )
    };

    // Pass 5: assemble the fleet snapshot. Locals keep their interior
    // verdicts; boundary users get the merged run's.
    let mut known_users: Vec<u32> = locals
        .iter()
        .flat_map(|l| l.known_users.iter().copied())
        .collect();
    known_users.sort_unstable();
    known_users.dedup();

    let mut flagged: Vec<(u32, u32, f64)> = locals
        .iter()
        .flat_map(|l| l.flagged.iter().copied())
        .filter(|&(u, _, _)| !boundary_users.contains(&u))
        .collect();
    let mut graph_vertices = locals.iter().map(|l| l.graph_vertices).sum::<usize>();
    let mut graph_edges = locals.iter().map(|l| l.graph_edges).sum::<u64>();
    let mut lp_iterations = locals.iter().map(|l| l.lp_iterations).max().unwrap_or(0);
    let mut gpu_counters = Default::default();
    if let Some(b) = &boundary_snapshot {
        flagged.extend_from_slice(&b.flagged);
        graph_vertices = graph_vertices.max(b.graph_vertices);
        graph_edges = graph_edges.max(b.graph_edges);
        lp_iterations = lp_iterations.max(b.lp_iterations);
        gpu_counters = b.gpu_counters;
    }
    flagged.sort_unstable_by_key(|a| a.0);

    let mut boundary: Vec<u32> = boundary_users.into_iter().collect();
    boundary.sort_unstable();

    Reconciled {
        snapshot: VerdictSnapshot {
            window_end: global_end,
            as_of_batch: as_of,
            known_users,
            flagged,
            graph_vertices,
            graph_edges,
            lp_iterations,
            gpu_counters,
        },
        boundary_users: boundary,
        report,
        boundary_run,
        lp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceCore;
    use glp_fraud::{RegionalStream, RegionalTxConfig, Transaction};

    fn stream() -> RegionalStream {
        RegionalStream::generate(&RegionalTxConfig {
            regions: 4,
            users_per_region: 250,
            items_per_region: 100,
            days: 10,
            tx_per_day: 1_200,
            cross_rings: 4,
            ring_size: 10,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.3,
            ..Default::default()
        })
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            engine_shards: 2,
            ..ServeConfig::default()
        }
        .with_window_days(8)
    }

    /// Drives `shards` one-region-per-shard sub-logs plus the reference
    /// single core, then reconciles and compares byte-for-byte.
    #[test]
    fn reconcile_matches_the_single_core_reference() {
        let s = stream();
        let route = |u: u32| (s.region_of(u) as usize) % 2;

        // Reference: every transaction through one core.
        let reference = ServiceCore::new(cfg(), s.blacklist.clone());
        // Shards: the same stream routed by buyer region onto 2 shards.
        let shards: Vec<crate::shard::ShardCore> = (0..2)
            .map(|i| crate::shard::ShardCore::new(i, cfg(), s.blacklist.clone()))
            .collect();
        let mut seq = 0u64;
        for day in 0..s.config.days {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            reference.apply_transactions(&txs);
            let mut routed: Vec<Vec<(u64, Transaction)>> = vec![Vec::new(); 2];
            for &t in &txs {
                routed[route(t.buyer)].push((seq, t));
                seq += 1;
            }
            for (i, shard) in shards.iter().enumerate() {
                shard.apply(&routed[i], day + 1);
            }
        }
        reference.recluster_now();
        for shard in &shards {
            shard.recluster_now();
        }
        let frames: Vec<ShardFrame> = shards.iter().map(|s| s.frame()).collect();
        let locals: Vec<Arc<VerdictSnapshot>> = shards.iter().map(|s| s.snapshot()).collect();
        let r = reconcile(&frames, &locals, &cfg(), &s.blacklist, s.config.days, 0);

        // The cross-region rings straddle shard boundaries, so the
        // exchange had real work to do.
        assert!(r.report.spanning_components > 0, "no spanning components");
        assert!(r.report.boundary_users > 0);
        assert!(r.lp.is_some());
        assert_eq!(
            r.snapshot.canonical_bytes(),
            reference.snapshot().canonical_bytes(),
            "2-shard reconciled snapshot must equal the 1-core reference"
        );
        // Every boundary user is known to the fleet snapshot.
        for &u in &r.boundary_users {
            assert!(r.snapshot.known_users.binary_search(&u).is_ok());
        }
    }

    #[test]
    fn cached_boundary_rounds_match_uncached_byte_for_byte() {
        // Two exchange rounds in the same day window: the second round's
        // merged log extends the first's, so the cached path replays
        // incrementally — and must publish exactly the uncached bytes.
        let s = stream();
        let route = |u: u32| (s.region_of(u) as usize) % 2;
        let mut cfg = cfg();
        cfg.delta_fraction_max = 1.0; // small boundary graphs: always eligible
        let shards: Vec<crate::shard::ShardCore> = (0..2)
            .map(|i| crate::shard::ShardCore::new(i, cfg.clone(), s.blacklist.clone()))
            .collect();
        let mut cache = BoundaryCache::new(cfg.window_days);
        let mut seq = 0u64;
        let mut modes = Vec::new();
        for day in 0..4u32 {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            // Two half-day rounds per day: the second extends the first.
            for chunk in txs.chunks(txs.len().div_ceil(2)) {
                let mut routed: Vec<Vec<(u64, Transaction)>> = vec![Vec::new(); 2];
                for &t in chunk {
                    routed[route(t.buyer)].push((seq, t));
                    seq += 1;
                }
                for (i, shard) in shards.iter().enumerate() {
                    shard.apply(&routed[i], day + 1);
                }
                for shard in &shards {
                    shard.recluster_now();
                }
                let frames: Vec<ShardFrame> = shards.iter().map(|s| s.frame()).collect();
                let locals: Vec<Arc<VerdictSnapshot>> =
                    shards.iter().map(|s| s.snapshot()).collect();
                let cached = reconcile_with(
                    &frames,
                    &locals,
                    &cfg,
                    &s.blacklist,
                    day + 1,
                    0,
                    Some(&mut cache),
                );
                let plain = reconcile(&frames, &locals, &cfg, &s.blacklist, day + 1, 0);
                assert_eq!(
                    cached.snapshot.canonical_bytes(),
                    plain.snapshot.canonical_bytes(),
                    "cached boundary round diverged at day {day}"
                );
                modes.extend(cached.boundary_run.map(|r| r.mode));
            }
        }
        use crate::recluster::ReclusterMode;
        assert!(
            modes.contains(&ReclusterMode::Incremental),
            "same-day extension rounds should replay incrementally: {modes:?}"
        );
        assert!(
            modes.contains(&ReclusterMode::Full),
            "first/rebuilt rounds run full: {modes:?}"
        );
    }

    #[test]
    fn no_spanning_components_skips_the_boundary_run() {
        // Strictly regional traffic, one region per shard: nothing
        // spans, the exchange is a cheap merge.
        let s = RegionalStream::generate(&RegionalTxConfig {
            regions: 2,
            users_per_region: 200,
            items_per_region: 80,
            days: 6,
            tx_per_day: 400,
            cross_rings: 0,
            ring_size: 2,
            ring_tx_per_day: 0,
            blacklist_fraction: 0.25,
            ..Default::default()
        });
        let shards: Vec<crate::shard::ShardCore> = (0..2)
            .map(|i| crate::shard::ShardCore::new(i, cfg(), s.blacklist.clone()))
            .collect();
        let mut seq = 0u64;
        for day in 0..s.config.days {
            let mut routed: Vec<Vec<(u64, Transaction)>> = vec![Vec::new(); 2];
            for &t in s.window(day, day + 1) {
                routed[s.region_of(t.buyer) as usize].push((seq, t));
                seq += 1;
            }
            for (i, shard) in shards.iter().enumerate() {
                shard.apply(&routed[i], day + 1);
            }
        }
        for shard in &shards {
            shard.recluster_now();
        }
        let frames: Vec<ShardFrame> = shards.iter().map(|s| s.frame()).collect();
        let locals: Vec<Arc<VerdictSnapshot>> = shards.iter().map(|s| s.snapshot()).collect();
        let r = reconcile(&frames, &locals, &cfg(), &s.blacklist, s.config.days, 0);
        assert_eq!(r.report.spanning_components, 0);
        assert_eq!(r.report.boundary_txs, 0);
        assert!(r.lp.is_none(), "no boundary LP when nothing spans");
        assert!(r.boundary_users.is_empty());
        // The merged snapshot still covers every user.
        let total: usize = locals.iter().map(|l| l.known_users.len()).sum();
        assert_eq!(r.snapshot.known_users.len(), total);
    }
}
