//! Service telemetry: monotonic counters and log-bucketed latency
//! histograms, cheap enough to record on every event and exportable as
//! JSON for dashboards and the bench harness.
//!
//! Histograms are HDR-style: 64 power-of-two buckets indexed by
//! `floor(log2(value))`, so recording is one atomic increment and
//! quantiles are exact to within a factor of two (reported at the
//! geometric midpoint of the winning bucket). That resolution is the
//! right trade for a hot path — recording must never contend, and
//! latency SLOs care about orders of magnitude, not microseconds.

use glp_gpusim::KernelCounters;
use glp_trace::KernelProfile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const BUCKETS: usize = 64;

/// Lock-free log₂-bucketed histogram of `u64` samples (typically
/// nanoseconds; the batch-size histogram records counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        // 0 and 1 share bucket 0; otherwise floor(log2(value)).
        (63 - value.max(1).leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported at the geometric
    /// midpoint of the bucket containing it; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i spans [2^i, 2^(i+1)): report 1.5 * 2^i,
                // clamped by the true maximum.
                let mid = (1u64 << i) + (1u64 << i) / 2;
                return mid.min(self.max());
            }
        }
        self.max()
    }

    /// `{count, mean, p50, p95, p99, max}` as JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "count": self.count(),
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max(),
        })
    }

    /// A plain-value copy of this histogram, mergeable with others — the
    /// building block of fleet-wide telemetry aggregation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time, plain-value copy of a [`Histogram`]. Because the
/// buckets are counts, two snapshots merge exactly (bucket-wise sums) —
/// the merged quantiles are precisely what one histogram recording both
/// sample sets would report.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`floor(log2(value))` indexing).
    pub buckets: Vec<u64>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Folds `other` into this snapshot (bucket-wise exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile, same bucket-midpoint semantics as
    /// [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let mid = (1u64 << i) + (1u64 << i) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Same JSON shape as [`Histogram::to_json`].
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "count": self.count,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        })
    }
}

/// All counters and histograms of one [`FraudService`](crate::FraudService).
///
/// Every field is updated with relaxed atomics (or a short mutex for the
/// GPU counter merge, which happens once per recluster, off the query
/// path). Readers see a consistent-enough view for monitoring; nothing
/// here synchronizes the data path.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Transactions accepted into the ingest queue.
    pub ingested: AtomicU64,
    /// Transactions evicted under [`ShedPolicy::DropOldest`](crate::ShedPolicy).
    pub shed_dropped_oldest: AtomicU64,
    /// Transactions refused under [`ShedPolicy::RejectNew`](crate::ShedPolicy).
    pub shed_rejected_new: AtomicU64,
    /// Transactions shed as invalid (non-finite amount or a day
    /// regression), at the gate or at the apply-side validation.
    pub rejected_invalid: AtomicU64,
    /// Transactions refused because the service was
    /// [`Shedding`](crate::HealthState::Shedding) or
    /// [`Down`](crate::HealthState::Down).
    pub shed_unhealthy: AtomicU64,
    /// Micro-batches applied to the window.
    pub batches: AtomicU64,
    /// Reclusters completed (= verdict snapshots published).
    pub reclusters: AtomicU64,
    /// Recluster requests coalesced because one was already in flight.
    pub reclusters_coalesced: AtomicU64,
    /// Queries served.
    pub queries: AtomicU64,
    /// Worker panics caught by the supervisor.
    pub worker_panics: AtomicU64,
    /// Worker restarts the supervisor performed (a final, abandoned
    /// panic is counted in `worker_panics` but not here).
    pub worker_restarts: AtomicU64,
    /// Checkpoints written successfully.
    pub checkpoints_written: AtomicU64,
    /// Checkpoint writes that failed (the service keeps serving; the
    /// previous checkpoint on disk stays intact).
    pub checkpoint_failures: AtomicU64,
    /// Same-tier engine retries after transient device faults, summed
    /// over every recluster's LP run.
    pub engine_retries: AtomicU64,
    /// Degradation-ladder steps the recluster engine took after
    /// persistent faults (GPU → hybrid → host).
    pub engine_degradations: AtomicU64,
    /// Completed LP iterations resumed instead of recomputed after a
    /// fault (see [`ResilienceReport`](glp_core::ResilienceReport)).
    pub iterations_salvaged: AtomicU64,
    /// Automatic shard failovers completed (checkpoint + journal replay
    /// rebuilt a Down shard and re-admitted it).
    pub failovers: AtomicU64,
    /// Validated micro-batches journaled to the write-ahead log before
    /// fan-out.
    pub wal_appended_batches: AtomicU64,
    /// Micro-batches replayed from the journal into a shard (failover
    /// rebuild or crash-restart catch-up).
    pub wal_replayed_batches: AtomicU64,
    /// Journal segments deleted because checkpoints made them redundant.
    pub wal_truncations: AtomicU64,
    /// Reclusters that ran the incremental delta-replay path.
    pub reclusters_incremental: AtomicU64,
    /// Reclusters that ran from scratch (ineligible delta, drift cap, or
    /// no warm start available).
    pub reclusters_full: AtomicU64,
    /// Transactions shed because the bounded queue was full, under
    /// either policy — the unified queue-overflow reason
    /// (`shed_dropped_oldest + shed_rejected_new`), counted alongside
    /// the per-policy breakdown so dashboards read one shed taxonomy:
    /// overflow / unhealthy / invalid.
    pub shed_overflow: AtomicU64,
    /// Burst episodes the ingest burst detector entered (shed rate over
    /// the configured threshold; see `BurstState`).
    pub bursts_detected: AtomicU64,
    /// Blacklist revisions applied (each one invalidates the warm
    /// recluster memo — the churn guard forcing the next recluster full).
    pub blacklist_revisions: AtomicU64,
    /// Snapshots scored against ground truth by a `DetectionProbe`.
    pub probe_evaluations: AtomicU64,
    /// Submit → batch-apply latency per transaction (ns).
    pub ingest_lag: Histogram,
    /// Applied micro-batch sizes (transactions).
    pub batch_size: Histogram,
    /// Wall time per recluster (ns).
    pub recluster_wall: Histogram,
    /// Query latency (ns).
    pub query_latency: Histogram,
    /// Delta-frontier sizes (vertices recomputed at iteration 0) of
    /// every recluster that ran LP — the whole graph for full runs, the
    /// touched set for incremental ones.
    pub delta_frontier: Histogram,
    /// GPU event totals summed over every recluster's LP run.
    pub gpu_totals: Mutex<KernelCounters>,
    /// Per-kernel launch aggregation (count / total / p50 / max modeled
    /// seconds by engine tier) summed over every recluster's LP run.
    pub kernel_profile: Mutex<KernelProfile>,
    /// Detection-quality time series: one [`ProbePoint`] per snapshot a
    /// `DetectionProbe` scored against ground truth, in scoring order.
    pub detection: Mutex<Vec<ProbePoint>>,
}

/// One detection-quality measurement: a published verdict snapshot
/// scored against the adversary's ground truth for the window it
/// covers. Recorded by the serving `DetectionProbe`; exported as the
/// `detection` time series in the telemetry JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProbePoint {
    /// Exclusive end day of the scored snapshot's window.
    pub day: u32,
    /// The snapshot's batch clock (`as_of_batch`).
    pub as_of_batch: u64,
    /// Precision of the snapshot's flagged set against the truth.
    pub precision: f64,
    /// Recall of the truth among the snapshot's flagged set.
    pub recall: f64,
    /// Users the snapshot flagged.
    pub flagged: usize,
    /// Ground-truth positives in the scored window.
    pub truth: usize,
}

impl ProbePoint {
    fn to_json(self) -> serde_json::Value {
        serde_json::json!({
            "day": self.day,
            "as_of_batch": self.as_of_batch,
            "precision": self.precision,
            "recall": self.recall,
            "flagged": self.flagged,
            "truth": self.truth,
        })
    }
}

/// The `detection` JSON section — shared by the live and snapshot
/// exports so the two serialize identically.
fn detection_json(points: &[ProbePoint]) -> serde_json::Value {
    serde_json::json!({
        "points": points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
        "latest_precision": points.last().map_or(0.0, |p| p.precision),
        "latest_recall": points.last().map_or(0.0, |p| p.recall),
    })
}

impl Telemetry {
    /// A fresh, zeroed telemetry block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one recluster's kernel counters into the running totals.
    /// Recovers from poisoning: a panicked recluster must not take down
    /// every later telemetry reader.
    pub fn merge_gpu(&self, counters: &KernelCounters) {
        self.gpu_totals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(counters);
    }

    /// Folds one recluster's per-kernel profile into the running totals.
    /// Recovers from poisoning like [`Self::merge_gpu`].
    pub fn merge_kernel_profile(&self, profile: &KernelProfile) {
        self.kernel_profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(profile);
    }

    /// Records one recluster's path decision and the frontier it
    /// consumed — called once per recluster that actually ran LP (the
    /// empty-window shortcut records nothing).
    pub fn record_recluster_outcome(&self, incremental: bool, frontier: u64) {
        if incremental {
            self.reclusters_incremental.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reclusters_full.fetch_add(1, Ordering::Relaxed);
        }
        self.delta_frontier.record(frontier);
    }

    /// Total transactions shed under either queue policy (validation and
    /// health shedding are counted separately — see
    /// [`Self::rejected_invalid`] and [`Self::shed_unhealthy`]).
    pub fn shed_total(&self) -> u64 {
        self.shed_dropped_oldest.load(Ordering::Relaxed)
            + self.shed_rejected_new.load(Ordering::Relaxed)
    }

    /// Records one detection-quality measurement into the time series.
    pub fn record_probe(&self, point: ProbePoint) {
        self.probe_evaluations.fetch_add(1, Ordering::Relaxed);
        self.detection
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(point);
    }

    /// The detection time series recorded so far (scoring order).
    pub fn detection_points(&self) -> Vec<ProbePoint> {
        self.detection
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The monotonic counters in checkpoint order (see
    /// [`Self::restore_counters`]). Histograms are deliberately not
    /// checkpointed: latency distributions describe a process lifetime,
    /// not the logical stream, and restart from empty.
    pub fn counters_snapshot(&self) -> Vec<u64> {
        self.counter_cells()
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Restores the monotonic counters from a checkpoint. Tolerates a
    /// shorter vector (older checkpoint: missing counters stay 0) and a
    /// longer one (newer: extras are ignored).
    pub fn restore_counters(&self, counters: &[u64]) {
        for (cell, &v) in self.counter_cells().iter().zip(counters) {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Checkpoint counter order. Append-only: new counters go at the
    /// end so old checkpoints keep restoring.
    fn counter_cells(&self) -> [&AtomicU64; 24] {
        [
            &self.ingested,
            &self.shed_dropped_oldest,
            &self.shed_rejected_new,
            &self.rejected_invalid,
            &self.shed_unhealthy,
            &self.batches,
            &self.reclusters,
            &self.reclusters_coalesced,
            &self.queries,
            &self.checkpoints_written,
            &self.checkpoint_failures,
            &self.engine_retries,
            &self.engine_degradations,
            &self.iterations_salvaged,
            &self.failovers,
            &self.wal_appended_batches,
            &self.wal_replayed_batches,
            &self.wal_truncations,
            &self.reclusters_incremental,
            &self.reclusters_full,
            &self.shed_overflow,
            &self.bursts_detected,
            &self.blacklist_revisions,
            &self.probe_evaluations,
        ]
    }

    /// The full telemetry block as JSON (histogram values in ns unless
    /// noted; `batch_size` in transactions).
    pub fn to_json(&self) -> serde_json::Value {
        let gpu = self.gpu_totals.lock().unwrap_or_else(|e| e.into_inner());
        let profile_rows: Vec<serde_json::Value> = {
            let profile = self
                .kernel_profile
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            profile
                .rows()
                .map(|(tier, kernel, row)| {
                    serde_json::json!({
                        "tier": tier,
                        "kernel": kernel,
                        "count": row.count,
                        "total_s": row.total_s,
                        "p50_s": row.p50_s(),
                        "max_s": row.max_s,
                    })
                })
                .collect()
        };
        serde_json::json!({
            "ingested": self.ingested.load(Ordering::Relaxed),
            "shed_dropped_oldest": self.shed_dropped_oldest.load(Ordering::Relaxed),
            "shed_rejected_new": self.shed_rejected_new.load(Ordering::Relaxed),
            "rejected_invalid": self.rejected_invalid.load(Ordering::Relaxed),
            "shed_unhealthy": self.shed_unhealthy.load(Ordering::Relaxed),
            "batches": self.batches.load(Ordering::Relaxed),
            "reclusters": self.reclusters.load(Ordering::Relaxed),
            "reclusters_coalesced": self.reclusters_coalesced.load(Ordering::Relaxed),
            "queries": self.queries.load(Ordering::Relaxed),
            "worker_panics": self.worker_panics.load(Ordering::Relaxed),
            "worker_restarts": self.worker_restarts.load(Ordering::Relaxed),
            "checkpoints_written": self.checkpoints_written.load(Ordering::Relaxed),
            "checkpoint_failures": self.checkpoint_failures.load(Ordering::Relaxed),
            "engine_retries": self.engine_retries.load(Ordering::Relaxed),
            "engine_degradations": self.engine_degradations.load(Ordering::Relaxed),
            "iterations_salvaged": self.iterations_salvaged.load(Ordering::Relaxed),
            "failovers": self.failovers.load(Ordering::Relaxed),
            "wal_appended_batches": self.wal_appended_batches.load(Ordering::Relaxed),
            "wal_replayed_batches": self.wal_replayed_batches.load(Ordering::Relaxed),
            "wal_truncations": self.wal_truncations.load(Ordering::Relaxed),
            "reclusters_incremental": self.reclusters_incremental.load(Ordering::Relaxed),
            "reclusters_full": self.reclusters_full.load(Ordering::Relaxed),
            "shed_overflow": self.shed_overflow.load(Ordering::Relaxed),
            "bursts_detected": self.bursts_detected.load(Ordering::Relaxed),
            "blacklist_revisions": self.blacklist_revisions.load(Ordering::Relaxed),
            "probe_evaluations": self.probe_evaluations.load(Ordering::Relaxed),
            "ingest_lag_ns": self.ingest_lag.to_json(),
            "batch_size": self.batch_size.to_json(),
            "recluster_wall_ns": self.recluster_wall.to_json(),
            "query_latency_ns": self.query_latency.to_json(),
            "delta_frontier": self.delta_frontier.to_json(),
            "detection": detection_json(&self.detection_points()),
            "gpu": serde_json::json!({
                "global_read_sectors": gpu.global_read_sectors,
                "global_write_sectors": gpu.global_write_sectors,
                "global_atomics": gpu.global_atomics,
                "shared_accesses": gpu.shared_accesses,
                "warp_intrinsics": gpu.warp_intrinsics,
                "kernel_launches": gpu.kernel_launches,
            }),
            "kernel_profile": profile_rows,
        })
    }

    /// A plain-value copy of the whole telemetry block, mergeable with
    /// other cores' snapshots into one fleet-wide view.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters_snapshot(),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            ingest_lag: self.ingest_lag.snapshot(),
            batch_size: self.batch_size.snapshot(),
            recluster_wall: self.recluster_wall.snapshot(),
            query_latency: self.query_latency.snapshot(),
            delta_frontier: self.delta_frontier.snapshot(),
            gpu_totals: *self.gpu_totals.lock().unwrap_or_else(|e| e.into_inner()),
            kernel_profile: self
                .kernel_profile
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            detection: self.detection_points(),
        }
    }
}

/// Checkpoint-order counter names, parallel to
/// `Telemetry::counter_cells` (append-only, like the cells).
const COUNTER_NAMES: [&str; 24] = [
    "ingested",
    "shed_dropped_oldest",
    "shed_rejected_new",
    "rejected_invalid",
    "shed_unhealthy",
    "batches",
    "reclusters",
    "reclusters_coalesced",
    "queries",
    "checkpoints_written",
    "checkpoint_failures",
    "engine_retries",
    "engine_degradations",
    "iterations_salvaged",
    "failovers",
    "wal_appended_batches",
    "wal_replayed_batches",
    "wal_truncations",
    "reclusters_incremental",
    "reclusters_full",
    "shed_overflow",
    "bursts_detected",
    "blacklist_revisions",
    "probe_evaluations",
];

/// A point-in-time, plain-value copy of one core's [`Telemetry`]. The
/// sharded router merges the snapshots of every shard core plus its own
/// into a single fleet-wide block — counters sum, histograms merge
/// bucket-wise exactly, GPU totals and kernel profiles fold through
/// their own `merge` — so operators read one JSON document per fleet,
/// not N disjoint blobs.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic counters in checkpoint order (see [`COUNTER_NAMES`]).
    pub counters: Vec<u64>,
    /// Worker panics caught by supervisors.
    pub worker_panics: u64,
    /// Worker restarts performed by supervisors.
    pub worker_restarts: u64,
    /// Submit → batch-apply latency per transaction (ns).
    pub ingest_lag: HistogramSnapshot,
    /// Applied micro-batch sizes (transactions).
    pub batch_size: HistogramSnapshot,
    /// Wall time per recluster (ns).
    pub recluster_wall: HistogramSnapshot,
    /// Query latency (ns).
    pub query_latency: HistogramSnapshot,
    /// Delta-frontier sizes of every recluster that ran LP.
    pub delta_frontier: HistogramSnapshot,
    /// GPU event totals summed over every recluster's LP run.
    pub gpu_totals: KernelCounters,
    /// Per-kernel launch aggregation summed over every recluster.
    pub kernel_profile: KernelProfile,
    /// Detection-quality time series (probe scorings, scoring order).
    pub detection: Vec<ProbePoint>,
}

impl TelemetrySnapshot {
    /// Folds `other` into this snapshot.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        if self.counters.len() < other.counters.len() {
            self.counters.resize(other.counters.len(), 0);
        }
        for (c, &o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        self.worker_panics += other.worker_panics;
        self.worker_restarts += other.worker_restarts;
        self.ingest_lag.merge(&other.ingest_lag);
        self.batch_size.merge(&other.batch_size);
        self.recluster_wall.merge(&other.recluster_wall);
        self.query_latency.merge(&other.query_latency);
        self.delta_frontier.merge(&other.delta_frontier);
        self.gpu_totals.merge(&other.gpu_totals);
        self.kernel_profile.merge(&other.kernel_profile);
        // Interleave the series back into scoring order: a probe stamps
        // every point with the publishing core's batch clock, so the
        // merged fleet series reads chronologically.
        self.detection.extend_from_slice(&other.detection);
        self.detection
            .sort_by_key(|p| (p.as_of_batch, p.day, p.flagged));
    }

    /// The named counter's value (0 if this snapshot predates it).
    pub fn counter(&self, name: &str) -> u64 {
        COUNTER_NAMES
            .iter()
            .position(|&n| n == name)
            .and_then(|i| self.counters.get(i).copied())
            .unwrap_or(0)
    }

    /// Same JSON shape as [`Telemetry::to_json`], so fleet-wide and
    /// single-core exports are drop-in interchangeable for dashboards.
    pub fn to_json(&self) -> serde_json::Value {
        // The vendored serde_json keeps objects as insertion-ordered
        // pairs; build the document in the same key order as
        // [`Telemetry::to_json`] so the two serialize identically.
        let mut doc: Vec<(String, serde_json::Value)> = Vec::new();
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            doc.push((
                (*name).to_string(),
                serde_json::json!(self.counters.get(i).copied().unwrap_or(0)),
            ));
        }
        doc.push((
            "worker_panics".to_string(),
            serde_json::json!(self.worker_panics),
        ));
        doc.push((
            "worker_restarts".to_string(),
            serde_json::json!(self.worker_restarts),
        ));
        doc.push(("ingest_lag_ns".to_string(), self.ingest_lag.to_json()));
        doc.push(("batch_size".to_string(), self.batch_size.to_json()));
        doc.push((
            "recluster_wall_ns".to_string(),
            self.recluster_wall.to_json(),
        ));
        doc.push(("query_latency_ns".to_string(), self.query_latency.to_json()));
        doc.push(("delta_frontier".to_string(), self.delta_frontier.to_json()));
        doc.push(("detection".to_string(), detection_json(&self.detection)));
        doc.push((
            "gpu".to_string(),
            serde_json::json!({
                "global_read_sectors": self.gpu_totals.global_read_sectors,
                "global_write_sectors": self.gpu_totals.global_write_sectors,
                "global_atomics": self.gpu_totals.global_atomics,
                "shared_accesses": self.gpu_totals.shared_accesses,
                "warp_intrinsics": self.gpu_totals.warp_intrinsics,
                "kernel_launches": self.gpu_totals.kernel_launches,
            }),
        ));
        let profile_rows: Vec<serde_json::Value> = self
            .kernel_profile
            .rows()
            .map(|(tier, kernel, row)| {
                serde_json::json!({
                    "tier": tier,
                    "kernel": kernel,
                    "count": row.count,
                    "total_s": row.total_s,
                    "p50_s": row.p50_s(),
                    "max_s": row.max_s,
                })
            })
            .collect();
        doc.push((
            "kernel_profile".to_string(),
            serde_json::Value::Array(profile_rows),
        ));
        serde_json::Value::Object(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000); // bucket 9 (512..1024)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 19
        }
        let p50 = h.quantile(0.50);
        assert!((512..2048).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 524_288, "p99 {p99}");
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            for _ in 0..20 {
                h.record(v);
            }
        }
        let mut prev = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn zero_and_one_share_the_first_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) <= 1);
    }

    #[test]
    fn counters_roundtrip_through_checkpoint_order() {
        let t = Telemetry::new();
        t.ingested.fetch_add(11, Ordering::Relaxed);
        t.rejected_invalid.fetch_add(3, Ordering::Relaxed);
        t.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        let snap = t.counters_snapshot();
        let back = Telemetry::new();
        back.restore_counters(&snap);
        assert_eq!(back.counters_snapshot(), snap);
        // A shorter (older-format) vector restores what it has.
        let partial = Telemetry::new();
        partial.restore_counters(&snap[..3]);
        assert_eq!(partial.ingested.load(Ordering::Relaxed), 11);
        assert_eq!(partial.batches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn snapshot_merge_equals_one_combined_block() {
        // Two cores record disjoint sample sets; merging their snapshots
        // must equal one telemetry block that recorded everything.
        let a = Telemetry::new();
        let b = Telemetry::new();
        let combined = Telemetry::new();
        for v in [100u64, 5_000, 90_000] {
            a.ingest_lag.record(v);
            combined.ingest_lag.record(v);
        }
        for v in [7u64, 2_000_000] {
            b.ingest_lag.record(v);
            combined.ingest_lag.record(v);
        }
        a.ingested.fetch_add(10, Ordering::Relaxed);
        b.ingested.fetch_add(32, Ordering::Relaxed);
        combined.ingested.fetch_add(42, Ordering::Relaxed);
        b.worker_panics.fetch_add(2, Ordering::Relaxed);
        combined.worker_panics.fetch_add(2, Ordering::Relaxed);
        let mut profile = KernelProfile::new();
        profile.record("GLP", "pick_label", 2e-4);
        b.merge_kernel_profile(&profile);
        combined.merge_kernel_profile(&profile);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let reference = combined.snapshot();
        assert_eq!(merged.counters, reference.counters);
        assert_eq!(merged.counter("ingested"), 42);
        assert_eq!(merged.worker_panics, 2);
        assert_eq!(merged.ingest_lag.count, reference.ingest_lag.count);
        assert_eq!(merged.ingest_lag.sum, reference.ingest_lag.sum);
        assert_eq!(merged.ingest_lag.max, reference.ingest_lag.max);
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(
                merged.ingest_lag.quantile(q),
                reference.ingest_lag.quantile(q)
            );
        }
        assert_eq!(
            serde_json::to_string(&merged.to_json()).unwrap(),
            serde_json::to_string(&reference.to_json()).unwrap(),
            "merged fleet JSON must equal the single-block reference"
        );
    }

    #[test]
    fn snapshot_json_matches_live_json_keys() {
        let t = Telemetry::new();
        t.ingested.fetch_add(3, Ordering::Relaxed);
        t.query_latency.record(5_000);
        let live = t.to_json();
        let snap = t.snapshot().to_json();
        fn keys(v: &serde_json::Value) -> Vec<String> {
            match v {
                serde_json::Value::Object(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
                _ => panic!("expected an object"),
            }
        }
        let live_keys = keys(&live);
        let snap_keys = keys(&snap);
        for k in &live_keys {
            assert!(snap_keys.contains(k), "snapshot JSON missing key {k}");
        }
        for k in &snap_keys {
            assert!(live_keys.contains(k), "snapshot JSON has extra key {k}");
        }
        assert_eq!(live["ingested"], snap["ingested"]);
        assert_eq!(live["query_latency_ns"], snap["query_latency_ns"]);
    }

    #[test]
    fn telemetry_json_has_all_sections() {
        let t = Telemetry::new();
        t.ingested.fetch_add(3, Ordering::Relaxed);
        t.query_latency.record(5_000);
        let mut profile = KernelProfile::new();
        profile.record("GLP", "pick_label", 1e-4);
        profile.record("GLP", "pick_label", 3e-4);
        t.merge_kernel_profile(&profile);
        let j = t.to_json();
        let rows = j["kernel_profile"].as_array().expect("profile array");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["kernel"].as_str(), Some("pick_label"));
        assert_eq!(rows[0]["count"].as_u64(), Some(2));
        for key in [
            "ingested",
            "shed_dropped_oldest",
            "shed_rejected_new",
            "rejected_invalid",
            "shed_unhealthy",
            "worker_panics",
            "worker_restarts",
            "checkpoints_written",
            "checkpoint_failures",
            "engine_retries",
            "engine_degradations",
            "iterations_salvaged",
            "failovers",
            "wal_appended_batches",
            "wal_replayed_batches",
            "wal_truncations",
            "reclusters_incremental",
            "reclusters_full",
            "shed_overflow",
            "bursts_detected",
            "blacklist_revisions",
            "probe_evaluations",
            "batches",
            "reclusters",
            "queries",
            "ingest_lag_ns",
            "batch_size",
            "recluster_wall_ns",
            "query_latency_ns",
            "delta_frontier",
            "detection",
            "gpu",
            "kernel_profile",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn detection_series_records_merges_and_exports() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.record_probe(ProbePoint {
            day: 5,
            as_of_batch: 2,
            precision: 1.0,
            recall: 0.5,
            flagged: 4,
            truth: 8,
        });
        b.record_probe(ProbePoint {
            day: 3,
            as_of_batch: 1,
            precision: 0.8,
            recall: 0.4,
            flagged: 5,
            truth: 10,
        });
        assert_eq!(a.probe_evaluations.load(Ordering::Relaxed), 1);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        // Merged series interleaves by batch clock.
        assert_eq!(merged.detection.len(), 2);
        assert_eq!(merged.detection[0].day, 3);
        assert_eq!(merged.detection[1].day, 5);
        assert_eq!(merged.counter("probe_evaluations"), 2);
        let j = merged.to_json();
        assert_eq!(
            j["detection"]["points"].as_array().map(|p| p.len()),
            Some(2)
        );
        assert_eq!(j["detection"]["latest_recall"].as_f64(), Some(0.5));
        // The live export carries the same section shape.
        let live = a.to_json();
        assert_eq!(live["detection"]["latest_precision"].as_f64(), Some(1.0));
    }

    #[test]
    fn shed_breakdown_covers_every_reason() {
        // The unified overflow counter plus the health and validity
        // reasons form the complete shed taxonomy, all present in both
        // exports (shed_overflow also equals the per-policy sum — the
        // gate counts both on every queue-full shed).
        let t = Telemetry::new();
        t.shed_dropped_oldest.fetch_add(3, Ordering::Relaxed);
        t.shed_overflow.fetch_add(3, Ordering::Relaxed);
        t.shed_rejected_new.fetch_add(2, Ordering::Relaxed);
        t.shed_overflow.fetch_add(2, Ordering::Relaxed);
        t.shed_unhealthy.fetch_add(7, Ordering::Relaxed);
        t.rejected_invalid.fetch_add(1, Ordering::Relaxed);
        assert_eq!(t.shed_total(), 5);
        assert_eq!(t.shed_overflow.load(Ordering::Relaxed), t.shed_total());
        let j = t.to_json();
        assert_eq!(j["shed_overflow"].as_u64(), Some(5));
        assert_eq!(j["shed_unhealthy"].as_u64(), Some(7));
        assert_eq!(j["rejected_invalid"].as_u64(), Some(1));
        let s = t.snapshot();
        assert_eq!(s.counter("shed_overflow"), 5);
        assert_eq!(s.counter("shed_unhealthy"), 7);
        assert_eq!(s.counter("rejected_invalid"), 1);
    }
}
