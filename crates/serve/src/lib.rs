//! # glp-serve — the always-on fraud-scoring service
//!
//! The paper's deployment story (§1, §5.4) is a *pipeline*: sliding
//! windows are rebuilt, LP reclusters them, downstream models read the
//! verdicts. This crate packages that pipeline as a real-time service —
//! the shape the production system at the paper's partner actually runs —
//! on top of the workspace's existing pieces:
//!
//! ```text
//!  producers ──▶ [bounded queue] ──▶ batcher ──▶ IncrementalWindow
//!      │  shed (counted:              │ micro-batches        │ materialize
//!      │  drop-oldest / reject-new)   │                      ▼ (short lock)
//!      ▼                              │             recluster thread
//!   Err(tx) back to producer         poke ─────────▶  LP + scoring
//!                                                          │ publish
//!  queries ◀── QueryHandle ◀── EpochCell<VerdictSnapshot> ◀┘ (Arc swap)
//! ```
//!
//! Three stages, three guarantees:
//!
//! * **Ingest** ([`ingest`]) — a bounded crossbeam channel drained into
//!   micro-batches by size cap and time budget, applied to an
//!   [`IncrementalWindow`](glp_fraud::IncrementalWindow) via
//!   `apply_batch`. Overload is explicit: the [`ShedPolicy`] either
//!   drops the oldest queued transaction or rejects the new one, always
//!   counted in [`Telemetry`], never silent, never blocking producers.
//! * **Recluster** ([`recluster`]) — every recluster is described by a
//!   [`ReclusterRequest`] (`::full` or `::incremental`) and answered
//!   with a [`ReclusterOutcome`]. Full requests run seeded/weighted LP
//!   through the existing [`GpuEngine`](glp_core::engine::GpuEngine)
//!   dispatch on a materialized snapshot; incremental requests replay
//!   the previous run's memoized trajectory over the delta frontier and
//!   publish **byte-identical** snapshots at a fraction of the cost.
//!   Verdicts go out through an epoch-swapped double buffer
//!   ([`swap::EpochCell`]). Queries observe LP results; they never wait
//!   on LP.
//! * **Query** ([`query`]) — a plain in-process trait ([`FraudScorer`])
//!   over immutable [`VerdictSnapshot`]s; no network, no async runtime,
//!   just threads and channels.
//!
//! [`telemetry`] keeps monotonic counters and HDR-style log-bucketed
//! latency histograms (ingest lag, batch size, recluster wall time,
//! query p50/p95/p99, shed counts) exportable as JSON, plus the GPU
//! [`KernelCounters`](glp_gpusim::KernelCounters) of every recluster.
//!
//! The bit-determinism of the underlying engine carries through: the
//! same transaction stream at the same batch boundaries produces
//! byte-identical verdict snapshots regardless of engine shard count
//! (pinned in `tests/determinism.rs`).
//!
//! ## Fault tolerance
//!
//! The service is supervised and durable:
//!
//! * **Supervision** ([`supervisor`]) — both worker threads run under
//!   supervisors that catch panics, count them, and restart with capped
//!   exponential backoff. A crash streak walks the [`health`] state
//!   machine `Healthy → Degraded → Shedding → Down`; the ingest gate
//!   sheds (counted) from `Shedding`, and queries keep answering from
//!   the last good snapshot in every state.
//! * **Checkpoint/restore** — with [`ServeConfig::checkpoint_path`] set,
//!   the window is periodically persisted through
//!   [`glp_fraud::checkpoint`] and [`FraudService::recover`] resumes
//!   from it with byte-identical LP output (pinned in
//!   `tests/checkpoint_restore.rs`).
//! * **Fault injection** (feature `fault-injection`, module [`faults`])
//!   — a deterministic, seeded [`FaultPlan`](faults::FaultPlan) drives
//!   worker panics, kernel stalls, corrupt transactions, and checkpoint
//!   failures at chosen batch indices, for the chaos tests and the
//!   `chaos_serve` bench bin.
//!
//! ## Sharded serving
//!
//! For keyspaces one core cannot hold, the fleet layer shards the
//! service horizontally:
//!
//! ```text
//!  producers ─▶ [queue] ─▶ router ──▶ shard 0 (window+recluster+ckpt)
//!                 │ validate, stamp ▶ shard 1       …
//!                 │ seqs, fan out  ▶ shard N-1
//!                 ▼ watermark to all shards, every batch
//!      exchange worker: union-find boundary components across frames,
//!      merge spanning txs by seq, recluster once ─▶ FleetSnapshot
//! ```
//!
//! * **Routing** ([`partition`]) — a deterministic, community-aware
//!   [`Partitioner`]: users with a known community hash by community
//!   (co-locating fraud rings), unknown users by id, with explicit
//!   placement overrides for rebalancing.
//! * **Shard cores** ([`shard`]) — each [`ShardCore`] owns its slice of
//!   the keyspace: window, local verdicts, telemetry, health, and a
//!   per-shard checkpoint (`<base>.shard<i>`) that persists the
//!   router's sequence stamps.
//! * **Label exchange** ([`exchange`]) — components whose users span
//!   shards are merged back into arrival order and reclustered once;
//!   everything else keeps its local verdict. N-shard fleet output is
//!   **byte-identical** to the 1-core reference (pinned in
//!   `tests/determinism.rs`).
//! * **Partial failure** ([`router`]) — a dead shard only degrades the
//!   fleet: its keyspace sheds (counted) while every other shard keeps
//!   serving, and [`FleetCore::restore`](router::FleetCore::restore) /
//!   [`ShardRouter::recover`](router::ShardRouter::recover) bring the
//!   whole fleet back from per-shard checkpoints.
//! * **Journal + failover** ([`wal`], [`router`]) — with
//!   [`FleetConfig::wal_dir`] set, the router journals every validated
//!   batch to a segmented, CRC-framed write-ahead log *before* fan-out.
//!   A shard that dies is then rebuilt automatically — last checkpoint
//!   plus journal replay of its keyspace — and re-admitted,
//!   byte-identical to a fleet that never lost it; whole-fleet
//!   crash-restart replays journaled batches the checkpoints missed
//!   (zero loss), tolerating a missing or corrupt shard checkpoint by
//!   rebuilding that shard from the journal alone (pinned in
//!   `tests/shard_failover.rs`).
//!
//! ## Adversarial robustness
//!
//! Against a workload that fights back (see [`glp_fraud::adversary`]),
//! three more pieces engage:
//!
//! * **Burst-adaptive admission** ([`ingest::BurstState`]) — the gate's
//!   shed rate is evaluated per [`ServeConfig::burst_window`]
//!   submissions; a flood that pushes it past the threshold tightens
//!   batching (smaller/faster batches drain the queue) and raises the
//!   health overlay to `Degraded`, recovering hysteretically. Admission
//!   decisions are untouched, so accepted sequences stay deterministic
//!   (pinned in `tests/overload.rs`).
//! * **Blacklist churn guard** — label noise gets retracted;
//!   `update_blacklist` on [`ServiceCore`] / [`ShardCore`] /
//!   [`FleetCore`](router::FleetCore) applies the change and resets the
//!   warm-start memo (and the fleet's boundary cache), forcing the next
//!   recluster to run full — the memo's coverage check compares window
//!   lineage, not seed sets (pinned in `tests/label_noise.rs`).
//! * **Detection-quality telemetry** ([`probe`]) — a [`DetectionProbe`]
//!   scores every published snapshot against per-day ground truth into
//!   a precision/recall time-series in the telemetry JSON, so evolving
//!   attacks that degrade *verdict quality* (not availability) are
//!   visible. The `adversarial_serve` bench bin drives all three.

pub mod config;
pub mod exchange;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod health;
pub mod ingest;
pub mod partition;
pub mod probe;
pub mod query;
pub mod recluster;
pub mod router;
pub mod service;
pub mod shard;
pub mod supervisor;
pub mod swap;
pub mod telemetry;
pub mod wal;

pub use config::{FleetConfig, ServeConfig, ShedPolicy};
pub use exchange::{BoundaryCache, ExchangeReport, FleetSnapshot, ShardFrame};
#[cfg(feature = "fault-injection")]
pub use faults::{Fault, FaultPlan, FaultSpec, FiredFault};
pub use health::{
    fleet_state, FleetHealthReport, HealthMonitor, HealthReport, HealthState, HealthThresholds,
    ShardHealthReport,
};
pub use ingest::{Batcher, BurstState, IngestGate, Submitted};
pub use partition::Partitioner;
pub use probe::DetectionProbe;
pub use query::{FraudScorer, Verdict, VerdictSnapshot};
pub use recluster::{LpMemo, ReclusterMode, ReclusterOutcome, ReclusterRequest, ReclusterRun};
pub use router::{
    ExchangeOutcome, FailoverError, FailoverEvent, FleetCore, FleetHandle, FleetRecoveryError,
    FleetShutdownReport, FleetTelemetry, ShardRouter,
};
pub use service::{FraudService, QueryHandle, ServiceCore, ShutdownReport};
pub use shard::ShardCore;
pub use supervisor::{supervise, supervise_with, RestartPolicy, WorkerOutcome, WorkerStatus};
pub use telemetry::{Histogram, ProbePoint, Telemetry, TelemetrySnapshot};
pub use wal::{FleetWal, WalError, WalRecord};
