//! The recluster stage: snapshot → seeded/weighted LP → scored verdicts.
//!
//! Runs entirely on a private, immutable [`WindowWorkload`] materialized
//! from the live window (the only shared-state touch is the short lock
//! that materializes it — see [`service`](crate::service)). LP and
//! scoring reuse the offline pipeline's stages 2–3 verbatim via
//! [`FraudPipeline::score`], so a verdict served online is the same
//! verdict the nightly batch job would have produced for the same window.
//!
//! ## The request API
//!
//! Every recluster is described by a [`ReclusterRequest`] — built with
//! [`ReclusterRequest::full`] or [`ReclusterRequest::incremental`],
//! stamped with the serving clocks, and executed with
//! [`ReclusterRequest::run`] — and every recluster answers with a
//! [`ReclusterOutcome`]: the snapshot to publish, the LP run report, the
//! engine resilience report, which [`ReclusterMode`] actually ran, the
//! frontier it consumed, and the [`LpMemo`] a *later* incremental
//! request can warm-start from.
//!
//! ## Incremental reclustering
//!
//! An incremental request carries the previous recluster's [`LpMemo`]
//! (its per-iteration label trajectory plus the identity stamp of the
//! window it described) and the [`WindowDelta`] the live window
//! accumulated since. When the delta is eligible — no expiry
//! invalidated the vertex mapping, the memo's stamp matches the delta's
//! `prev_*` identity, iteration caps agree, and the touched frontier is
//! under [`ServeConfig::delta_fraction_max`] — the previous trajectory
//! is remapped into the grown graph's id space and *replayed* through
//! [`glp_core::replay_delta`], recomputing decisions only on the delta
//! frontier. LP is not confluent, so merely warm-starting from the old
//! fixpoint could settle elsewhere; the replay re-executes the exact
//! from-scratch trajectory instead, which is why the published snapshot
//! is **byte-identical** to a from-scratch recluster of the same window
//! (pinned in `tests/delta_identity.rs`). An ineligible delta silently
//! falls back to a full recluster — the mode in the outcome says which
//! path ran.

use crate::config::ServeConfig;
use crate::health::HealthMonitor;
use crate::query::VerdictSnapshot;
use crate::telemetry::Telemetry;
use glp_core::engine::ResilientEngine;
use glp_core::{
    replay_delta, Engine, LpRunReport, MemoRecorder, ResilienceReport, RunOptions, WeightedLp,
};
use glp_fraud::{FraudPipeline, WindowDelta, WindowWorkload};
use glp_graph::{Label, VertexId};
use glp_trace::Tracer;
use std::collections::HashMap;
use std::sync::atomic::Ordering;

/// Which recluster path actually executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReclusterMode {
    /// From-scratch seeded LP over the whole window graph.
    Full,
    /// Memoized delta replay seeded from the changed-vertex frontier.
    Incremental,
}

impl ReclusterMode {
    /// Stable lowercase name (telemetry, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::Incremental => "incremental",
        }
    }
}

/// The memoized per-iteration label trajectory of one recluster, plus
/// the identity stamp of the window it described. A later
/// [`ReclusterRequest::incremental`] presents this together with the
/// [`WindowDelta`] that grew the window; [`ReclusterRequest::run`]
/// accepts the warm start only when the stamp matches the delta's
/// `prev_*` identity — a memo can never silently seed a replay over a
/// window it does not describe.
#[derive(Clone, Debug)]
pub struct LpMemo {
    /// Labels after each LP iteration, in the stamped window's vertex
    /// id space.
    per_iteration: Vec<Vec<Label>>,
    /// Iteration cap the memoized run executed under. A replay under a
    /// different cap could extend a non-converged trajectory, so caps
    /// must agree.
    max_iterations: u32,
    /// Transactions in the stamped window.
    transactions: u64,
    /// User-vertex count of the stamped window.
    num_users: usize,
    /// Total vertex count of the stamped window.
    num_vertices: usize,
}

impl LpMemo {
    /// Whether `delta` extends exactly the window this memo describes,
    /// under the iteration cap `cfg` would run with.
    ///
    /// Note what this check does *not* compare: the blacklist. A memo
    /// records the label trajectory of a run seeded from a specific seed
    /// set, so blacklist churn silently invalidates it while every stamp
    /// here still matches. The trigger owners guard that hole
    /// structurally — `update_blacklist` on
    /// [`ServiceCore`](crate::service::ServiceCore) /
    /// [`ShardCore`](crate::shard::ShardCore) /
    /// [`FleetCore`](crate::router::FleetCore) resets the warm state
    /// (and the fleet's boundary cache) on any seed-set change, forcing
    /// the next recluster to run full.
    fn covers(&self, delta: &WindowDelta, cfg: &ServeConfig) -> bool {
        !delta.expired
            && !self.per_iteration.is_empty()
            && self.max_iterations == cfg.pipeline.lp_iterations
            && self.transactions == delta.prev_transactions
            && self.num_users == delta.prev_users
            && self.num_vertices == delta.prev_vertices
    }
}

/// What one trigger entry point reports back — the shared return type
/// of [`ServiceCore::recluster_now`](crate::service::ServiceCore::recluster_now),
/// [`ShardCore::recluster_now`](crate::shard::ShardCore::recluster_now),
/// [`FleetCore::recluster_now`](crate::router::FleetCore::recluster_now),
/// and their threaded wrappers.
#[derive(Clone, Copy, Debug)]
pub struct ReclusterRun {
    /// Which path ran.
    pub mode: ReclusterMode,
    /// Wall seconds of the whole recluster (materialize + LP + scoring
    /// + publish).
    pub wall_seconds: f64,
    /// Vertices the LP recomputed decisions for at iteration 0: the
    /// delta frontier for an incremental run, the whole graph for a
    /// full one, 0 when the window was empty (or a fleet shard was
    /// down).
    pub frontier: usize,
}

/// Everything one executed [`ReclusterRequest`] produced.
pub struct ReclusterOutcome {
    /// The verdict snapshot to publish.
    pub snapshot: VerdictSnapshot,
    /// The LP run report (host wall clock only for incremental runs —
    /// the replay involves no device).
    pub report: LpRunReport,
    /// What the engine's recovery machinery did. An incremental run
    /// reports tier `"DeltaReplay"` with no faults — the replay is
    /// host-side and deterministic.
    pub resilience: ResilienceReport,
    /// Which path actually ran (an ineligible incremental request falls
    /// back to [`ReclusterMode::Full`]).
    pub mode: ReclusterMode,
    /// Vertices whose decisions were recomputed at iteration 0 (see
    /// [`ReclusterRun::frontier`]).
    pub frontier: usize,
    /// The memo a later incremental request can warm-start from.
    /// `None` when the per-iteration capture was incomplete (a program
    /// that refuses mid-run saves); the caller then falls back to full
    /// next time.
    pub memo: Option<LpMemo>,
}

impl ReclusterOutcome {
    /// This outcome as a [`ReclusterRun`] with the given wall time.
    pub fn as_run(&self, wall_seconds: f64) -> ReclusterRun {
        ReclusterRun {
            mode: self.mode,
            wall_seconds,
            frontier: self.frontier,
        }
    }
}

/// One recluster, described before it runs: the materialized window,
/// the blacklist seeds, the configuration, the serving clocks to stamp
/// into the snapshot, an optional span recorder, and an optional warm
/// start. Build with [`Self::full`] or [`Self::incremental`], refine
/// with [`Self::stamped`] / [`Self::with_tracer`], execute with
/// [`Self::run`].
pub struct ReclusterRequest<'a> {
    workload: &'a WindowWorkload,
    blacklist: &'a [u32],
    cfg: &'a ServeConfig,
    as_of_batch: u64,
    window_end: u32,
    tracer: Option<&'a Tracer>,
    warm: Option<(&'a LpMemo, &'a WindowDelta)>,
}

impl<'a> ReclusterRequest<'a> {
    /// A from-scratch recluster of `workload`.
    pub fn full(workload: &'a WindowWorkload, blacklist: &'a [u32], cfg: &'a ServeConfig) -> Self {
        Self {
            workload,
            blacklist,
            cfg,
            as_of_batch: 0,
            window_end: 0,
            tracer: None,
            warm: None,
        }
    }

    /// An incremental recluster: replay `prev`'s trajectory over the
    /// grown `workload`, recomputing only the frontier `delta` touched.
    /// [`Self::run`] checks eligibility (memo stamp, expiry, frontier
    /// fraction) and silently falls back to a full recluster when the
    /// warm start cannot be honored — the outcome's
    /// [`mode`](ReclusterOutcome::mode) says which path ran.
    pub fn incremental(
        workload: &'a WindowWorkload,
        blacklist: &'a [u32],
        cfg: &'a ServeConfig,
        prev: &'a LpMemo,
        delta: &'a WindowDelta,
    ) -> Self {
        Self {
            warm: Some((prev, delta)),
            ..Self::full(workload, blacklist, cfg)
        }
    }

    /// Stamps the serving clocks into the published snapshot:
    /// `as_of_batch` is how many micro-batches the window had absorbed
    /// when it was materialized, `window_end` its exclusive end day.
    pub fn stamped(mut self, as_of_batch: u64, window_end: u32) -> Self {
        self.as_of_batch = as_of_batch;
        self.window_end = window_end;
        self
    }

    /// Attaches (or detaches) a span recorder for the LP run. Only a
    /// full recluster records engine spans — the incremental replay is
    /// a host loop with no modeled kernels.
    pub fn with_tracer(mut self, tracer: Option<&'a Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Whether the warm start is honorable: the memo must cover exactly
    /// the window the delta extends, the window must have grown
    /// monotonically (no expiry renumbering), and the touched frontier
    /// must be under `delta_fraction_max` of the graph.
    fn eligible_warm(&self) -> Option<(&'a LpMemo, &'a WindowDelta)> {
        let (memo, delta) = self.warm?;
        let n = self.workload.graph.num_vertices();
        let monotone = delta.prev_users <= self.workload.num_user_vertices
            && delta.prev_vertices <= n
            && delta.prev_transactions <= self.workload.num_transactions;
        // `> 0.0` and not just the product: a zero-touched delta (a
        // recluster with no new transactions) must still honor
        // `delta_fraction_max = 0.0` as "incremental off".
        let small_enough = self.cfg.delta_fraction_max > 0.0
            && (delta.touched.len() as f64) <= self.cfg.delta_fraction_max * n as f64;
        (memo.covers(delta, self.cfg) && monotone && small_enough).then_some((memo, delta))
    }

    /// Executes the recluster. LP runs behind
    /// [`ResilientEngine::gpu_ladder`] on the full path (device faults
    /// retry/degrade without losing the window; labels are
    /// engine-independent, so a degraded snapshot is byte-identical to
    /// the GPU's) and through [`replay_delta`] on the incremental path.
    /// If every ladder tier fails the recluster panics and the
    /// supervisor's crash/restart machinery takes over (see
    /// [`crate::supervisor`]).
    pub fn run(self) -> ReclusterOutcome {
        let workload = self.workload;
        let cfg = self.cfg;
        let n = workload.graph.num_vertices();

        // Seeds: black-listed users actually present in this window.
        let mut seeds: Vec<VertexId> = self
            .blacklist
            .iter()
            .filter_map(|u| workload.user_vertex.get(u).copied())
            .collect();
        seeds.sort_unstable();

        if let Some((memo, delta)) = self.eligible_warm() {
            // Incremental: remap the previous trajectory into the grown
            // id space and replay it. First-appearance ids make growth
            // an order-preserving insertion: old users keep their ids,
            // old items shift up by the number of new users, and new
            // vertices take the freed/appended positions.
            let shift = workload.num_user_vertices - delta.prev_users;
            let phi = |x: usize| if x < delta.prev_users { x } else { x + shift };
            let remapped: Vec<Vec<Label>> = memo
                .per_iteration
                .iter()
                .map(|entry| {
                    // New positions get identity placeholders; they are
                    // always in the seed frontier (all their edges are
                    // new), so the placeholder never feeds a decision.
                    let mut m: Vec<Label> = (0..n as Label).collect();
                    for (old_v, &l) in entry.iter().enumerate() {
                        m[phi(old_v)] = phi(l as usize) as Label;
                    }
                    m
                })
                .collect();
            let mut frontier = vec![false; n];
            for &v in &delta.touched {
                frontier[v as usize] = true;
            }
            let mut prog = WeightedLp::from_graph(&workload.graph, cfg.pipeline.lp_iterations)
                .with_retention(cfg.pipeline.retention);
            let replay = replay_delta(
                &workload.graph,
                &mut prog,
                &remapped,
                &frontier,
                cfg.pipeline.lp_iterations,
            );
            let snapshot = assemble_snapshot(
                workload,
                cfg,
                &prog,
                &seeds,
                &replay.report,
                self.as_of_batch,
                self.window_end,
            );
            return ReclusterOutcome {
                snapshot,
                resilience: ResilienceReport {
                    tier: Some("DeltaReplay"),
                    ..ResilienceReport::default()
                },
                mode: ReclusterMode::Incremental,
                frontier: replay.initial_frontier,
                memo: Some(LpMemo {
                    per_iteration: replay.memo,
                    max_iterations: cfg.pipeline.lp_iterations,
                    transactions: workload.num_transactions,
                    num_users: workload.num_user_vertices,
                    num_vertices: n,
                }),
                report: replay.report,
            };
        }

        // Full: from-scratch seeded LP, recording the per-iteration
        // memo so the next recluster can go incremental.
        let mut prog = WeightedLp::from_graph(&workload.graph, cfg.pipeline.lp_iterations)
            .with_retention(cfg.pipeline.retention);
        let mut engine = ResilientEngine::gpu_ladder();
        let recorder = MemoRecorder::new();
        let mut opts = RunOptions::default()
            .with_max_iterations(cfg.pipeline.lp_iterations)
            .with_frontier(cfg.frontier)
            .with_shards(cfg.engine_shards)
            .with_barrier_hook(recorder.hook(n));
        if let Some(t) = self.tracer {
            opts = opts.with_tracer(t.clone());
        }
        let report = engine
            .run(&workload.graph, &mut prog, &opts)
            .unwrap_or_else(|e| panic!("recluster LP failed on every engine tier: {e}"));
        let captured = recorder.into_memo();
        let memo = (captured.len() == report.iterations as usize && !captured.is_empty())
            .then_some(LpMemo {
                per_iteration: captured,
                max_iterations: cfg.pipeline.lp_iterations,
                transactions: workload.num_transactions,
                num_users: workload.num_user_vertices,
                num_vertices: n,
            });
        let snapshot = assemble_snapshot(
            workload,
            cfg,
            &prog,
            &seeds,
            &report,
            self.as_of_batch,
            self.window_end,
        );
        ReclusterOutcome {
            snapshot,
            resilience: engine.resilience().clone(),
            mode: ReclusterMode::Full,
            frontier: n,
            memo,
            report,
        }
    }
}

/// Warm-start state carried between reclusters by every trigger owner
/// ([`ServiceCore`](crate::service::ServiceCore), each
/// [`ShardCore`](crate::shard::ShardCore), the fleet's boundary cache):
/// the previous run's memo plus how many incremental runs have stacked
/// on it since the last full one (the drift cap
/// [`ServeConfig::full_recluster_every`] counts these).
#[derive(Default)]
pub(crate) struct WarmState {
    memo: Option<LpMemo>,
    increments: u64,
}

impl WarmState {
    /// Forgets the warm start (empty window, failover rebuild): the next
    /// recluster runs full.
    pub(crate) fn reset(&mut self) {
        self.memo = None;
        self.increments = 0;
    }

    /// Runs the next recluster through this state: incremental when a
    /// memo exists and the drift cap has not been hit, full otherwise —
    /// then absorbs the new memo and advances/resets the increment
    /// counter by what actually ran. The returned outcome's `memo` is
    /// `None` (it lives here now).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        &mut self,
        workload: &WindowWorkload,
        blacklist: &[u32],
        cfg: &ServeConfig,
        delta: &WindowDelta,
        as_of_batch: u64,
        window_end: u32,
        tracer: Option<&Tracer>,
    ) -> ReclusterOutcome {
        let force_full =
            cfg.full_recluster_every > 0 && self.increments >= cfg.full_recluster_every;
        let request = match (&self.memo, force_full) {
            (Some(memo), false) => {
                ReclusterRequest::incremental(workload, blacklist, cfg, memo, delta)
            }
            _ => ReclusterRequest::full(workload, blacklist, cfg),
        }
        .stamped(as_of_batch, window_end)
        .with_tracer(tracer);
        let mut outcome = request.run();
        match outcome.mode {
            ReclusterMode::Incremental => self.increments += 1,
            ReclusterMode::Full => self.increments = 0,
        }
        self.memo = outcome.memo.take();
        outcome
    }
}

/// Merges one outcome's engine-side reports into a telemetry block and
/// health monitor — the bookkeeping tail shared by every trigger owner.
pub(crate) fn absorb_outcome(
    telemetry: &Telemetry,
    health: &HealthMonitor,
    outcome: &ReclusterOutcome,
) {
    telemetry.merge_gpu(&outcome.report.gpu_counters);
    telemetry.merge_kernel_profile(&outcome.report.kernel_profile);
    telemetry
        .engine_retries
        .fetch_add(u64::from(outcome.resilience.retries), Ordering::Relaxed);
    telemetry.engine_degradations.fetch_add(
        u64::from(outcome.resilience.degradations),
        Ordering::Relaxed,
    );
    telemetry
        .iterations_salvaged
        .fetch_add(outcome.resilience.iterations_salvaged, Ordering::Relaxed);
    if let Some(tier) = outcome.resilience.tier {
        health.set_engine_tier(tier);
    }
    telemetry.record_recluster_outcome(
        outcome.mode == ReclusterMode::Incremental,
        outcome.frontier as u64,
    );
}

/// Scores the converged program and resolves everything to plain user
/// ids — the snapshot-assembly tail shared by both recluster paths.
fn assemble_snapshot(
    workload: &WindowWorkload,
    cfg: &ServeConfig,
    prog: &WeightedLp,
    seeds: &[VertexId],
    report: &LpRunReport,
    as_of_batch: u64,
    window_end: u32,
) -> VerdictSnapshot {
    let pipe = FraudPipeline::new(cfg.pipeline.clone());
    let clusters = pipe.score(workload, prog, seeds);

    let vertex_user: HashMap<VertexId, u32> =
        workload.user_vertex.iter().map(|(&u, &v)| (v, u)).collect();
    // Publish each cluster under the *minimum member user id* rather
    // than the raw LP label: LP labels are vertex ids, which depend on
    // how the window mapped users to vertices, while the min member is a
    // property of the cluster's user set alone. This makes snapshots
    // canonical across any order-preserving re-indexing of the window —
    // in particular, a shard's sub-window and the whole window assign
    // the same published label to the same cluster, which is what lets
    // the sharded fleet's verdicts be compared byte-for-byte against the
    // single-core reference (see `crate::exchange`).
    let mut flagged: Vec<(u32, u32, f64)> = Vec::new();
    for c in &clusters {
        let users: Vec<u32> = c
            .users
            .iter()
            .filter_map(|v| vertex_user.get(v).copied())
            .collect();
        if let Some(&canon) = users.iter().min() {
            for &u in &users {
                flagged.push((u, canon, c.score));
            }
        }
    }
    // Clusters partition users by label, so users are unique; sorting by
    // user id makes the snapshot canonical regardless of cluster
    // iteration order.
    flagged.sort_unstable_by_key(|a| a.0);
    let mut known_users: Vec<u32> = workload.user_vertex.keys().copied().collect();
    known_users.sort_unstable();

    VerdictSnapshot {
        window_end,
        as_of_batch,
        known_users,
        flagged,
        graph_vertices: workload.graph.num_vertices(),
        graph_edges: workload.graph.num_edges(),
        lp_iterations: report.iterations,
        gpu_counters: report.gpu_counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Verdict;
    use glp_fraud::{IncrementalWindow, Transaction, TxConfig, TxStream};

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 1_500,
            num_items: 600,
            days: 30,
            tx_per_day: 900,
            num_rings: 3,
            ring_size: 12,
            ring_tx_per_day: 40,
            blacklist_fraction: 0.25,
            ..Default::default()
        })
    }

    #[test]
    fn recluster_flags_ring_members() {
        let s = stream();
        let cfg = ServeConfig::default().with_window_days(20);
        let workload = WindowWorkload::build(&s, 20);
        let outcome = ReclusterRequest::full(&workload, &s.blacklist, &cfg)
            .stamped(3, s.config.days)
            .run();
        let snap = &outcome.snapshot;
        assert_eq!(snap.as_of_batch, 3);
        assert_eq!(snap.window_end, s.config.days);
        assert!(outcome.report.iterations > 0);
        assert_eq!(outcome.mode, ReclusterMode::Full);
        assert_eq!(outcome.frontier, workload.graph.num_vertices());
        assert!(outcome.memo.is_some(), "full runs capture a memo");
        // No faults injected: the run stays on the GPU tier untouched.
        assert_eq!(outcome.resilience.tier, Some("GLP"));
        assert_eq!(outcome.resilience.retries, 0);
        assert_eq!(outcome.resilience.degradations, 0);
        assert!(snap.num_flagged() > 0, "rings should be flagged");
        // Flagged users are real ring members far more often than not.
        let hits = snap
            .flagged
            .iter()
            .filter(|&&(u, _, _)| s.ring_of[u as usize].is_some())
            .count();
        assert!(
            hits * 2 > snap.num_flagged(),
            "{hits}/{} flagged users in rings",
            snap.num_flagged()
        );
        // And every flagged user gets a Flagged verdict back.
        for &(u, _, _) in &snap.flagged {
            assert!(matches!(snap.verdict(u), Verdict::Flagged { .. }));
        }
    }

    #[test]
    fn snapshot_is_deterministic_for_a_fixed_window() {
        let s = stream();
        let cfg = ServeConfig::default().with_window_days(15);
        let workload = WindowWorkload::build(&s, 15);
        let a = ReclusterRequest::full(&workload, &s.blacklist, &cfg)
            .stamped(0, s.config.days)
            .run();
        let b = ReclusterRequest::full(&workload, &s.blacklist, &cfg)
            .stamped(7, s.config.days)
            .run();
        assert_eq!(a.snapshot.canonical_bytes(), b.snapshot.canonical_bytes());
    }

    #[test]
    fn incremental_replay_matches_full_byte_for_byte() {
        let s = stream();
        // Frontier cap wide open: this test pins byte-identity, and a
        // third-of-a-day chunk can touch more than the default fraction.
        let mut cfg = ServeConfig::default().with_window_days(10);
        cfg.delta_fraction_max = 1.0;
        let mut window = IncrementalWindow::empty(10);
        let day0: Vec<Transaction> = s.window(0, 1).copied().collect();
        window.apply_batch(&day0);
        let (w0, _) = window.materialize_delta();
        let first = ReclusterRequest::full(&w0, &s.blacklist, &cfg)
            .stamped(1, window.end())
            .run();
        let mut memo = first.memo.expect("full run captures a memo");

        // Grow the window batch by batch within the same day range and
        // recluster incrementally each time; a forced-full request over
        // the identical workload must publish identical bytes.
        let day1: Vec<Transaction> = s.window(1, 2).copied().collect();
        for (i, chunk) in day1.chunks(day1.len().div_ceil(3)).enumerate() {
            window.apply_batch(chunk);
            let (w, delta) = window.materialize_delta();
            let inc = ReclusterRequest::incremental(&w, &s.blacklist, &cfg, &memo, &delta)
                .stamped(2 + i as u64, window.end())
                .run();
            assert_eq!(inc.mode, ReclusterMode::Incremental, "chunk {i}");
            assert_eq!(inc.resilience.tier, Some("DeltaReplay"));
            assert!(inc.frontier > 0 && inc.frontier < w.graph.num_vertices());
            let full = ReclusterRequest::full(&w, &s.blacklist, &cfg)
                .stamped(2 + i as u64, window.end())
                .run();
            assert_eq!(
                inc.snapshot.canonical_bytes(),
                full.snapshot.canonical_bytes(),
                "incremental != full at chunk {i}"
            );
            assert_eq!(inc.report.iterations, full.report.iterations);
            memo = inc.memo.expect("replay always yields a memo");
        }
    }

    #[test]
    fn ineligible_warm_starts_fall_back_to_full() {
        let s = stream();
        let cfg = ServeConfig::default().with_window_days(10);
        let mut window = IncrementalWindow::empty(10);
        window.apply_batch(&s.window(0, 1).copied().collect::<Vec<_>>());
        let (w0, d0) = window.materialize_delta();
        assert!(d0.expired, "first delta has no baseline");
        // An expired delta must not seed a replay even with a memo.
        let full = ReclusterRequest::full(&w0, &s.blacklist, &cfg).run();
        let memo = full.memo.unwrap();
        let out = ReclusterRequest::incremental(&w0, &s.blacklist, &cfg, &memo, &d0).run();
        assert_eq!(out.mode, ReclusterMode::Full);

        // A frontier over delta_fraction_max forces full too.
        window.apply_batch(&s.window(1, 2).copied().collect::<Vec<_>>());
        let (w1, d1) = window.materialize_delta();
        assert!(!d1.expired);
        let mut strict = cfg.clone();
        strict.delta_fraction_max = 0.0;
        let out = ReclusterRequest::incremental(&w1, &s.blacklist, &strict, &memo, &d1).run();
        assert_eq!(out.mode, ReclusterMode::Full);
    }
}
