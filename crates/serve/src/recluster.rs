//! The recluster stage: snapshot → seeded/weighted LP → scored verdicts.
//!
//! Runs entirely on a private, immutable [`WindowWorkload`] materialized
//! from the live window (the only shared-state touch is the short lock
//! that materializes it — see [`service`](crate::service)). LP and
//! scoring reuse the offline pipeline's stages 2–3 verbatim via
//! [`FraudPipeline::score`], so a verdict served online is the same
//! verdict the nightly batch job would have produced for the same window.

use crate::config::ServeConfig;
use crate::query::VerdictSnapshot;
use glp_core::engine::ResilientEngine;
use glp_core::{Engine, LpRunReport, ResilienceReport, RunOptions, WeightedLp};
use glp_fraud::{FraudPipeline, WindowWorkload};
use glp_graph::VertexId;
use glp_trace::Tracer;
use std::collections::HashMap;

/// Scores `workload` from the blacklist seeds and resolves everything to
/// plain user ids. `as_of_batch` is bookkeeping stamped into the
/// snapshot (how many micro-batches the window had absorbed when it was
/// materialized).
///
/// LP runs behind [`ResilientEngine::gpu_ladder`], so a device fault
/// mid-recluster retries from the failed iteration and a dead device
/// degrades to the hybrid or host tier instead of losing the window —
/// the returned [`ResilienceReport`] says what recovery work was done.
/// Labels are engine-independent, so a degraded snapshot is byte-
/// identical to the one the GPU would have published. `WeightedLp`
/// checkpoints its label state, so every ladder rung is reachable; if
/// every tier fails the recluster panics and the supervisor's
/// crash/restart machinery takes over (see [`crate::supervisor`]).
pub fn recluster(
    workload: &WindowWorkload,
    blacklist: &[u32],
    cfg: &ServeConfig,
    as_of_batch: u64,
    window_end: u32,
    tracer: Option<&Tracer>,
) -> (VerdictSnapshot, LpRunReport, ResilienceReport) {
    // Seeds: black-listed users actually present in this window.
    let mut seeds: Vec<VertexId> = blacklist
        .iter()
        .filter_map(|u| workload.user_vertex.get(u).copied())
        .collect();
    seeds.sort_unstable();

    let mut prog = WeightedLp::from_graph(&workload.graph, cfg.pipeline.lp_iterations)
        .with_retention(cfg.pipeline.retention);
    let mut engine = ResilientEngine::gpu_ladder();
    let mut opts = RunOptions::default()
        .with_max_iterations(cfg.pipeline.lp_iterations)
        .with_frontier(cfg.frontier)
        .with_shards(cfg.engine_shards);
    if let Some(t) = tracer {
        opts = opts.with_tracer(t.clone());
    }
    let report = engine
        .run(&workload.graph, &mut prog, &opts)
        .unwrap_or_else(|e| panic!("recluster LP failed on every engine tier: {e}"));

    let pipe = FraudPipeline::new(cfg.pipeline.clone());
    let clusters = pipe.score(workload, &prog, &seeds);

    let vertex_user: HashMap<VertexId, u32> =
        workload.user_vertex.iter().map(|(&u, &v)| (v, u)).collect();
    // Publish each cluster under the *minimum member user id* rather
    // than the raw LP label: LP labels are vertex ids, which depend on
    // how the window mapped users to vertices, while the min member is a
    // property of the cluster's user set alone. This makes snapshots
    // canonical across any order-preserving re-indexing of the window —
    // in particular, a shard's sub-window and the whole window assign
    // the same published label to the same cluster, which is what lets
    // the sharded fleet's verdicts be compared byte-for-byte against the
    // single-core reference (see `crate::exchange`).
    let mut flagged: Vec<(u32, u32, f64)> = Vec::new();
    for c in &clusters {
        let users: Vec<u32> = c
            .users
            .iter()
            .filter_map(|v| vertex_user.get(v).copied())
            .collect();
        if let Some(&canon) = users.iter().min() {
            for &u in &users {
                flagged.push((u, canon, c.score));
            }
        }
    }
    // Clusters partition users by label, so users are unique; sorting by
    // user id makes the snapshot canonical regardless of cluster
    // iteration order.
    flagged.sort_unstable_by_key(|a| a.0);
    let mut known_users: Vec<u32> = workload.user_vertex.keys().copied().collect();
    known_users.sort_unstable();

    let snapshot = VerdictSnapshot {
        window_end,
        as_of_batch,
        known_users,
        flagged,
        graph_vertices: workload.graph.num_vertices(),
        graph_edges: workload.graph.num_edges(),
        lp_iterations: report.iterations,
        gpu_counters: report.gpu_counters,
    };
    (snapshot, report, engine.resilience().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Verdict;
    use glp_fraud::{TxConfig, TxStream};

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 1_500,
            num_items: 600,
            days: 30,
            tx_per_day: 900,
            num_rings: 3,
            ring_size: 12,
            ring_tx_per_day: 40,
            blacklist_fraction: 0.25,
            ..Default::default()
        })
    }

    #[test]
    fn recluster_flags_ring_members() {
        let s = stream();
        let cfg = ServeConfig::default().with_window_days(20);
        let workload = WindowWorkload::build(&s, 20);
        let (snap, report, resilience) =
            recluster(&workload, &s.blacklist, &cfg, 3, s.config.days, None);
        assert_eq!(snap.as_of_batch, 3);
        assert_eq!(snap.window_end, s.config.days);
        assert!(report.iterations > 0);
        // No faults injected: the run stays on the GPU tier untouched.
        assert_eq!(resilience.tier, Some("GLP"));
        assert_eq!(resilience.retries, 0);
        assert_eq!(resilience.degradations, 0);
        assert!(snap.num_flagged() > 0, "rings should be flagged");
        // Flagged users are real ring members far more often than not.
        let hits = snap
            .flagged
            .iter()
            .filter(|&&(u, _, _)| s.ring_of[u as usize].is_some())
            .count();
        assert!(
            hits * 2 > snap.num_flagged(),
            "{hits}/{} flagged users in rings",
            snap.num_flagged()
        );
        // And every flagged user gets a Flagged verdict back.
        for &(u, _, _) in &snap.flagged {
            assert!(matches!(snap.verdict(u), Verdict::Flagged { .. }));
        }
    }

    #[test]
    fn snapshot_is_deterministic_for_a_fixed_window() {
        let s = stream();
        let cfg = ServeConfig::default().with_window_days(15);
        let workload = WindowWorkload::build(&s, 15);
        let (a, _, _) = recluster(&workload, &s.blacklist, &cfg, 0, s.config.days, None);
        let (b, _, _) = recluster(&workload, &s.blacklist, &cfg, 7, s.config.days, None);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }
}
