//! Journal + failover pins — the tests that turn "degrade instead of
//! down" into "degrade, then heal":
//!
//! * a shard killed mid-stream is rebuilt automatically (checkpoint +
//!   journal replay) and every published snapshot outside the crash
//!   window is **byte-identical** to a fault-free fleet run;
//! * a whole-fleet crash-restart from checkpoints + journal loses zero
//!   journaled batches;
//! * `recover` with one deleted shard checkpoint still restores the
//!   full fleet by rebuilding that shard from the journal alone;
//! * an injected journal-append failure degrades the fleet loudly but
//!   never stops scoring;
//! * a crash *between* journal append and fan-out replays the
//!   journaled-but-unapplied batch exactly once.

use glp_fraud::Transaction;
use glp_serve::{FleetConfig, FleetCore, HealthState, Partitioner, ShardRouter};
use glp_test_support::regional_stream;
use std::path::{Path, PathBuf};

#[cfg(feature = "fault-injection")]
use glp_serve::{Fault, FaultPlan};
#[cfg(feature = "fault-injection")]
use std::sync::Arc;

const SHARDS: usize = 3;
const VICTIM: usize = 1;

fn temp_base(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glp_failover_{}_{}.ckpt", name, std::process::id()))
}

fn temp_wal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glp_failover_{}_{}.wal", name, std::process::id()))
}

/// Journal + checkpoints, the full durability configuration.
fn fleet_cfg(base: &Path, wal: &Path) -> FleetConfig {
    let mut cfg = FleetConfig {
        shards: SHARDS,
        exchange_every_batches: 8,
        ..FleetConfig::default()
    }
    .with_window_days(10);
    cfg.shard.checkpoint_path = Some(base.to_path_buf());
    cfg.wal_dir = Some(wal.to_path_buf());
    cfg
}

/// The fault-free reference fleet: no journal, no checkpoints — the
/// run the healed fleet must match byte for byte.
fn ref_cfg() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        exchange_every_batches: 8,
        ..FleetConfig::default()
    }
    .with_window_days(10)
}

fn cleanup(base: &Path, wal: &Path) {
    for i in 0..SHARDS {
        let mut p = base.as_os_str().to_owned();
        p.push(format!(".shard{i}"));
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_dir_all(wal);
}

#[cfg(feature = "fault-injection")]
#[test]
fn killed_shard_rebuilds_automatically_and_stays_byte_identical() {
    let s = regional_stream();
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let chunk = all.len().div_ceil(20).max(1);
    let chunks: Vec<&[Transaction]> = all.chunks(chunk).collect();
    assert!(chunks.len() >= 16, "stream too small for the kill schedule");
    let base = temp_base("auto");
    let wal = temp_wal("auto");
    cleanup(&base, &wal);
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());

    let reference = FleetCore::new(ref_cfg(), partitioner(), s.blacklist.clone());

    // Walk the victim all the way to Down with consecutive panics; the
    // final one trips the automatic failover in the same batch.
    let down_after = u64::from(FleetConfig::default().shard.down_after_crashes);
    let kill_from = 8u64;
    let plan = Arc::new(FaultPlan::new((0..down_after).map(|j| Fault::ShardPanic {
        shard: VICTIM,
        at_batch: kill_from + j,
    })));
    let fleet = FleetCore::new(fleet_cfg(&base, &wal), partitioner(), s.blacklist.clone())
        .with_faults(Arc::clone(&plan));

    let last = chunks.len() as u64 - 1;
    for (j, c) in chunks.iter().enumerate() {
        let j = j as u64;
        reference.apply_transactions(c);
        fleet.apply_transactions(c);
        if j == 5 {
            // The failover's base image: mid-stream, well before the
            // kill window.
            fleet.checkpoint_all().expect("mid-stream checkpoint");
        }
        // Published snapshots outside the crash window — before the
        // first panic and from the first full post-rebuild batch on —
        // must match the fault-free run byte for byte.
        if j == 6 || j == kill_from + down_after || j == last {
            reference.exchange_now();
            fleet.exchange_now();
            assert_eq!(
                fleet.fleet_snapshot().verdicts.canonical_bytes(),
                reference.fleet_snapshot().verdicts.canonical_bytes(),
                "published snapshot diverged at batch {j}"
            );
        }
    }
    assert!(plan.all_fired(), "kill schedule never completed");

    let events = fleet.failover_events();
    assert_eq!(events.len(), 1, "exactly one rebuild");
    assert_eq!(events[0].shard, VICTIM);
    assert!(
        events[0].from_checkpoint,
        "the mid-stream image was the base"
    );
    assert!(events[0].replayed_batches > 0);
    let health = fleet.health();
    assert_eq!(
        health.shards[VICTIM].state,
        HealthState::Healthy,
        "re-admitted"
    );
    assert_eq!(health.state, HealthState::Healthy);

    let t = fleet.fleet_telemetry();
    assert_eq!(t.counter("failovers"), 1);
    assert_eq!(t.shard_failovers[VICTIM], 1);
    assert_eq!(t.fleet_state, HealthState::Healthy);
    assert!(t.counter("wal_replayed_batches") > 0);
    assert_eq!(t.counter("wal_appended_batches"), chunks.len() as u64);

    // Not just the merged view: every shard's local state is exactly
    // the never-killed fleet's.
    for i in 0..SHARDS {
        assert_eq!(
            fleet.shards()[i].snapshot().canonical_bytes(),
            reference.shards()[i].snapshot().canonical_bytes(),
            "shard {i} local snapshot diverged after the rebuild"
        );
    }
    cleanup(&base, &wal);
}

#[test]
fn whole_fleet_crash_restart_loses_no_journaled_batches() {
    let s = regional_stream();
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let split = all.len() / 2;
    let base = temp_base("crash");
    let wal = temp_wal("crash");
    cleanup(&base, &wal);
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());

    let reference = FleetCore::new(ref_cfg(), partitioner(), s.blacklist.clone());
    for chunk in all[..split].chunks(500) {
        reference.apply_transactions(chunk);
    }
    for chunk in all[split..].chunks(500) {
        reference.apply_transactions(chunk);
    }
    reference.exchange_now();

    // Checkpoint at the split; everything after it exists only in the
    // journal when the fleet "crashes" (dropped without shutdown).
    {
        let fleet = FleetCore::new(fleet_cfg(&base, &wal), partitioner(), s.blacklist.clone());
        for chunk in all[..split].chunks(500) {
            fleet.apply_transactions(chunk);
        }
        fleet.checkpoint_all().expect("mid-stream checkpoint");
        for chunk in all[split..].chunks(500) {
            fleet.apply_transactions(chunk);
        }
    }

    let restored = FleetCore::restore(fleet_cfg(&base, &wal), partitioner(), s.blacklist.clone())
        .expect("restore from checkpoints + journal");
    assert_eq!(
        restored.batches_applied(),
        reference.batches_applied(),
        "journal replay must cover every post-checkpoint batch"
    );
    assert_eq!(
        restored.fleet_snapshot().verdicts.canonical_bytes(),
        reference.fleet_snapshot().verdicts.canonical_bytes(),
        "crash-restart diverged from the uninterrupted run"
    );
    for i in 0..SHARDS {
        assert_eq!(
            restored.shards()[i].snapshot().canonical_bytes(),
            reference.shards()[i].snapshot().canonical_bytes(),
            "shard {i} local snapshot diverged after crash-restart"
        );
    }
    let t = restored.fleet_telemetry();
    assert!(
        t.counter("wal_replayed_batches") > 0,
        "the journal did real work"
    );
    cleanup(&base, &wal);
}

#[test]
fn recover_rebuilds_a_missing_shard_checkpoint_from_the_journal() {
    let s = regional_stream();
    let base = temp_base("lost_image");
    let wal = temp_wal("lost_image");
    cleanup(&base, &wal);
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());
    let mut cfg = fleet_cfg(&base, &wal);
    // Rebuilding a shard from batch 0 needs the journal's full history;
    // with truncation on, checkpoints would have deleted it.
    cfg.wal_truncate_on_checkpoint = false;

    let router = ShardRouter::start(cfg.clone(), partitioner(), s.blacklist.clone());
    for t in s.window(0, s.config.days) {
        router.submit(*t).expect("fleet accepts while running");
    }
    let report = router.shutdown();
    assert!(report.clean());
    let before = report.core.fleet_snapshot().verdicts.canonical_bytes();

    // The victim's durable image is gone; only the journal knows its
    // history.
    let victim_image = cfg.shard_checkpoint_path(VICTIM).expect("path configured");
    std::fs::remove_file(&victim_image).expect("delete the victim's checkpoint");

    let recovered = ShardRouter::recover(cfg, partitioner(), s.blacklist.clone())
        .expect("recover despite the missing shard image");
    assert_eq!(recovered.health().state, HealthState::Healthy);
    assert_eq!(
        recovered.core().fleet_snapshot().verdicts.canonical_bytes(),
        before,
        "journal-alone shard rebuild diverged from the pre-shutdown snapshot"
    );
    let t = recovered.core().fleet_telemetry();
    assert!(
        t.counter("wal_replayed_batches") > 0,
        "the victim was replayed"
    );
    let report = recovered.shutdown();
    assert!(report.clean());
    cleanup(&base, &wal);
}

#[cfg(feature = "fault-injection")]
#[test]
fn journal_append_failure_degrades_but_never_stops_scoring() {
    let s = regional_stream();
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let wal = temp_wal("append_fail");
    let _ = std::fs::remove_dir_all(&wal);
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());
    let mut cfg = ref_cfg();
    cfg.wal_dir = Some(wal.clone());

    let reference = FleetCore::new(ref_cfg(), partitioner(), s.blacklist.clone());
    let fail_at = 2u64;
    let plan = Arc::new(FaultPlan::new([Fault::WalAppendFail { at_batch: fail_at }]));
    let fleet =
        FleetCore::new(cfg, partitioner(), s.blacklist.clone()).with_faults(Arc::clone(&plan));

    let chunks: Vec<&[Transaction]> = all.chunks(500).collect();
    for (j, c) in chunks.iter().enumerate() {
        reference.apply_transactions(c);
        fleet.apply_transactions(c);
        if j as u64 == fail_at {
            // The failed append is loud: the fleet degrades...
            assert_eq!(fleet.health().state, HealthState::Degraded);
        }
    }
    assert!(plan.all_fired());
    // ...and the next successful append already healed it.
    assert_eq!(fleet.health().state, HealthState::Healthy);
    let t = fleet.fleet_telemetry();
    assert_eq!(
        t.counter("wal_appended_batches"),
        chunks.len() as u64 - 1,
        "exactly the failed batch is missing from the journal"
    );
    // Scoring never depended on the journal.
    reference.exchange_now();
    fleet.exchange_now();
    assert_eq!(
        fleet.fleet_snapshot().verdicts.canonical_bytes(),
        reference.fleet_snapshot().verdicts.canonical_bytes(),
        "an append failure must not change a single verdict byte"
    );
    let _ = std::fs::remove_dir_all(&wal);
}

#[cfg(feature = "fault-injection")]
#[test]
fn crash_between_journal_and_fanout_replays_exactly_once() {
    let s = regional_stream();
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let wal = temp_wal("crash_window");
    let _ = std::fs::remove_dir_all(&wal);
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());
    let mut cfg = ref_cfg();
    cfg.wal_dir = Some(wal.clone());

    let reference = FleetCore::new(ref_cfg(), partitioner(), s.blacklist.clone());
    let crash_at = 4u64;
    let plan = Arc::new(FaultPlan::new([Fault::CrashAfterJournal {
        at_batch: crash_at,
    }]));
    let fleet =
        FleetCore::new(cfg, partitioner(), s.blacklist.clone()).with_faults(Arc::clone(&plan));

    for (j, c) in all.chunks(500).enumerate() {
        reference.apply_transactions(c);
        if j as u64 == crash_at {
            // The canonical write-ahead crash window: the batch is on
            // disk, no shard ever saw it, the batch count never moved.
            let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fleet.apply_transactions(c)
            }));
            assert!(crash.is_err(), "the injected crash must fire");
            assert_eq!(fleet.batches_applied(), crash_at);
            // Recovery (what `router_loop` does on worker restart):
            // replay lands the record once on every shard...
            let replayed = fleet.sync_from_wal().expect("heal the crash window");
            assert_eq!(replayed, SHARDS as u64, "one record, each shard once");
            assert_eq!(fleet.batches_applied(), crash_at + 1);
            // ...and exactly once: a second sync finds nothing to do.
            assert_eq!(fleet.sync_from_wal().expect("idempotent"), 0);
        } else {
            fleet.apply_transactions(c);
        }
    }
    assert!(plan.all_fired());
    reference.exchange_now();
    fleet.exchange_now();
    assert_eq!(
        fleet.fleet_snapshot().verdicts.canonical_bytes(),
        reference.fleet_snapshot().verdicts.canonical_bytes(),
        "the journaled-but-unapplied batch must land exactly once"
    );
    let _ = std::fs::remove_dir_all(&wal);
}

#[cfg(feature = "fault-injection")]
#[test]
fn threaded_fleet_auto_heals_a_killed_shard() {
    use std::sync::atomic::Ordering;
    use std::time::{Duration, Instant};

    let s = regional_stream();
    let wal = temp_wal("threaded");
    let _ = std::fs::remove_dir_all(&wal);
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());
    // Journal only, no checkpoints: the rebuild must work from the
    // journal alone.
    let mut cfg = ref_cfg();
    cfg.wal_dir = Some(wal.clone());
    let down_after = u64::from(cfg.shard.down_after_crashes);
    let plan = Arc::new(FaultPlan::new((0..down_after).map(|j| Fault::ShardPanic {
        shard: VICTIM,
        at_batch: 2 + j,
    })));
    let router =
        ShardRouter::start_with_faults(cfg, partitioner(), s.blacklist.clone(), Arc::clone(&plan));
    for t in s.window(0, s.config.days) {
        router.submit(*t).expect("fleet accepts while running");
    }
    // The kill schedule and the heal both happen while traffic flows;
    // wait (bounded) for the rebuild to complete.
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        let victim = &router.core().shards()[VICTIM];
        if plan.all_fired()
            && victim.telemetry().failovers.load(Ordering::Relaxed) >= 1
            && router.health().shards[VICTIM].state == HealthState::Healthy
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(plan.all_fired(), "kill schedule never completed");
    let report = router.shutdown();
    let core = report.core;
    let events = core.failover_events();
    assert!(!events.is_empty(), "the victim was never rebuilt");
    assert_eq!(events[0].shard, VICTIM);
    assert!(
        !events[0].from_checkpoint,
        "no checkpoints: journal-alone rebuild"
    );
    assert_eq!(
        core.health().state,
        HealthState::Healthy,
        "fully healed fleet"
    );
    assert!(
        core.fleet_snapshot().verdicts.num_flagged() > 0,
        "still scoring"
    );
    let _ = std::fs::remove_dir_all(&wal);
}
