//! Blacklist label noise and its retraction.
//!
//! An adversary (or a sloppy upstream feed) plants innocent accounts in
//! the seed blacklist. Seeds steer the weighted LP, so the poison shapes
//! verdicts — and because the incremental-recluster memo's coverage
//! check compares *window lineage*, not seed sets, a naive retraction
//! would keep replaying the poisoned trajectory forever. This suite pins
//! the churn guard: `update_blacklist` applies the retraction, bumps
//! `blacklist_revisions`, and invalidates the memo so the very next
//! recluster runs **full** — after which the service publishes verdicts
//! byte-identical to a service that never saw the noise. Both the
//! single core and the sharded fleet (where the guard must also reset
//! the cached boundary recluster) are covered.

use glp_fraud::Transaction;
use glp_serve::{
    FleetConfig, FleetCore, Partitioner, ReclusterMode, ServeConfig, ServiceCore, Telemetry,
};
use glp_test_support::adversarial_stream;

/// A config where incremental replay is always eligible (any frontier
/// size accepted, no drift cap), so a full recluster after retraction
/// can only come from the churn guard.
fn greedy_incremental() -> ServeConfig {
    let mut cfg = ServeConfig::default().with_window_days(10);
    cfg.delta_fraction_max = 1.0;
    cfg.full_recluster_every = 0;
    cfg
}

#[test]
fn retraction_invalidates_the_memo_and_restores_clean_verdicts() {
    let s = adversarial_stream();
    assert!(!s.noise.is_empty(), "stream must plant label noise");
    let all: Vec<Transaction> = s.window(0, s.config.base.days).copied().collect();

    // The reference: a core that was never poisoned.
    let clean = ServiceCore::new(greedy_incremental(), s.clean_blacklist());
    for chunk in all.chunks(400) {
        clean.apply_transactions(chunk);
    }
    clean.recluster_now();
    let clean_bytes = clean.snapshot().canonical_bytes();

    // The victim: seeded with truth + noise, reclustering as it goes so
    // a warm memo exists when the retraction lands.
    let noised = ServiceCore::new(greedy_incremental(), s.blacklist.clone());
    for chunk in all.chunks(400) {
        noised.apply_transactions(chunk);
    }
    let first = noised.recluster_now();
    assert_eq!(first.mode, ReclusterMode::Full, "cold start runs full");
    assert_ne!(
        noised.blacklist(),
        s.clean_blacklist(),
        "the victim must actually be seeded with the noise"
    );

    // Control: with a warm memo and no churn, the next recluster replays.
    let control = noised.recluster_now();
    assert_eq!(
        control.mode,
        ReclusterMode::Incremental,
        "a warm memo must be eligible right before the retraction"
    );

    // The retraction: same window, same memo — but the seeds changed, so
    // the guard must force the next run full.
    assert!(noised.update_blacklist(&[], &s.noise));
    assert!(
        !noised.update_blacklist(&[], &s.noise),
        "retracting twice is a no-op"
    );
    let after = noised.recluster_now();
    assert_eq!(
        after.mode,
        ReclusterMode::Full,
        "churn must invalidate the memo: replaying the poisoned \
         trajectory would keep the noise alive"
    );
    assert_eq!(
        noised.blacklist(),
        s.clean_blacklist(),
        "retraction must leave exactly the true seeds"
    );
    assert_eq!(
        noised.snapshot().canonical_bytes(),
        clean_bytes,
        "after retraction the verdicts must match a never-poisoned run"
    );
    assert_eq!(
        noised.telemetry().snapshot().counter("blacklist_revisions"),
        1
    );
}

#[test]
fn additions_also_invalidate_the_memo() {
    let s = adversarial_stream();
    let all: Vec<Transaction> = s.window(0, s.config.base.days).copied().collect();
    // Start from the clean truth and *add* the noise instead: the guard
    // is symmetric in add/remove.
    let core = ServiceCore::new(greedy_incremental(), s.clean_blacklist());
    for chunk in all.chunks(400) {
        core.apply_transactions(chunk);
    }
    core.recluster_now();
    assert!(core.update_blacklist(&s.noise, &[]));
    assert_eq!(core.recluster_now().mode, ReclusterMode::Full);

    // And the poisoned result equals a run that was seeded noisy from
    // the start — update_blacklist is a real seed-set transition, not a
    // side channel.
    let reference = ServiceCore::new(greedy_incremental(), s.blacklist.clone());
    for chunk in all.chunks(400) {
        reference.apply_transactions(chunk);
    }
    reference.recluster_now();
    assert_eq!(
        core.snapshot().canonical_bytes(),
        reference.snapshot().canonical_bytes()
    );
}

/// Drives a fleet over the stream with `blacklist` seeds, reclustering
/// mid-run to warm the boundary cache, then applies `retract` (if any)
/// and returns the final fleet snapshot's canonical bytes.
fn fleet_final_bytes(s: &glp_fraud::AdversarialStream, shards: usize, retract: bool) -> Vec<u8> {
    let cfg = FleetConfig {
        shards,
        shard: greedy_incremental(),
        ..FleetConfig::default()
    }
    .with_window_days(10);
    let partitioner = Partitioner::with_communities(shards, 7, s.community_map());
    let seeds = if retract {
        s.blacklist.clone()
    } else {
        s.clean_blacklist()
    };
    let core = FleetCore::new(cfg, partitioner, seeds);
    let all: Vec<Transaction> = s.window(0, s.config.base.days).copied().collect();
    for (i, chunk) in all.chunks(400).enumerate() {
        core.apply_transactions(chunk);
        // Exchange mid-run so the boundary cache and shard memos are
        // warm (and poisoned) when the retraction lands.
        if (i + 1) % 4 == 0 {
            core.exchange_now();
        }
    }
    if retract {
        assert!(core.update_blacklist(&[], &s.noise));
    }
    core.exchange_now();
    core.fleet_snapshot().verdicts.canonical_bytes()
}

#[test]
fn fleet_retraction_matches_a_never_poisoned_fleet() {
    let s = adversarial_stream();
    let clean = fleet_final_bytes(&s, 2, false);
    let retracted = fleet_final_bytes(&s, 2, true);
    assert_eq!(
        retracted, clean,
        "2-shard fleet must recover byte-identically after retraction \
         (shard memos and the boundary cache must all be invalidated)"
    );
    // And the retracted fleet agrees across shard counts.
    assert_eq!(fleet_final_bytes(&s, 1, true), clean);
    assert_eq!(fleet_final_bytes(&s, 4, true), clean);
}

#[test]
fn probe_sees_stale_snapshots_lose_recall() {
    // Detection-quality telemetry makes the *rotation* attack visible:
    // a snapshot frozen early in the stream keeps flagging the mules of
    // its day while the ring rotates fresh accounts in, so its recall
    // against current truth decays — where a live, reclustering service
    // keeps it high. (This is the bench bin's headline assertion, pinned
    // here at test scale.)
    // A 10-day window keeps the statically-seeded members inside the
    // live window (so seeded LP still finds the ring) while the frozen
    // snapshot's members rotate out of the current truth.
    let s = adversarial_stream();
    let days = s.config.base.days;
    let window = 10;
    let cfg = ServeConfig::default().with_window_days(window);
    let probe = glp_serve::DetectionProbe::from_adversarial(&s, window);
    let t = Telemetry::new();

    let core = ServiceCore::new(cfg, s.clean_blacklist());
    let day_txs = |d: u32| -> Vec<Transaction> { s.window(d, d + 1).copied().collect() };
    for d in 0..4 {
        core.apply_transactions(&day_txs(d));
    }
    core.recluster_now();
    let stale = core.snapshot();
    assert!(stale.num_flagged() > 0, "the early rings must be flagged");

    for d in 4..days {
        core.apply_transactions(&day_txs(d));
    }
    core.recluster_now();
    let live_point = probe.observe(&core.snapshot(), &t);

    // The stale snapshot, scored against *today's* truth.
    let stale_flagged: Vec<u32> = stale.flagged.iter().map(|&(u, _, _)| u).collect();
    let truth_now = probe.truth_for_window(core.snapshot().window_end);
    let (_, stale_recall) = glp_fraud::precision_recall(&stale_flagged, &truth_now);
    assert!(
        live_point.recall > stale_recall,
        "rotation must erode the stale snapshot: live {} vs stale {}",
        live_point.recall,
        stale_recall
    );
    assert_eq!(t.detection_points().len(), 1);
}
