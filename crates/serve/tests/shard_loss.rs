//! Shard-loss chaos pins (feature `fault-injection`): killing one shard
//! mid-stream must *degrade* the fleet — its keyspace sheds while every
//! surviving shard keeps serving verdicts identical to a fault-free run
//! — never take the whole service down. This is the sharded subsystem's
//! core availability claim, demonstrated against injected panics rather
//! than asserted on faith.

#![cfg(feature = "fault-injection")]

use glp_fraud::Transaction;
use glp_serve::{
    Fault, FaultPlan, FleetConfig, FleetCore, FraudScorer, HealthState, Partitioner, ShardRouter,
};
use glp_test_support::regional_stream;
use std::sync::Arc;

const SHARDS: usize = 4;
const VICTIM: usize = 1;

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        exchange_every_batches: 8,
        ..FleetConfig::default()
    }
    .with_window_days(10)
}

/// A plan that panics the victim shard's apply path on enough
/// *consecutive* fleet batches to walk its health monitor all the way
/// to `Down` (`down_after_crashes` defaults to 6; one success in
/// between would reset the streak).
fn kill_plan(from_batch: u64) -> Arc<FaultPlan> {
    let down_after = u64::from(fleet_cfg().shard.down_after_crashes);
    Arc::new(FaultPlan::new((0..down_after).map(|i| Fault::ShardPanic {
        shard: VICTIM,
        at_batch: from_batch + i,
    })))
}

/// Drives the whole regional stream through a fleet core in fixed
/// batches with an exchange round at the end, returning the core.
fn drive(core: &FleetCore, all: &[Transaction]) {
    for chunk in all.chunks(500) {
        core.apply_transactions(chunk);
    }
    core.exchange_now();
}

#[test]
fn killing_one_shard_degrades_the_fleet_and_spares_the_survivors() {
    let s = regional_stream();
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());

    let reference = FleetCore::new(fleet_cfg(), partitioner(), s.blacklist.clone());
    drive(&reference, &all);

    let plan = kill_plan(4);
    let faulted = FleetCore::new(fleet_cfg(), partitioner(), s.blacklist.clone())
        .with_faults(Arc::clone(&plan));
    drive(&faulted, &all);
    assert!(plan.all_fired(), "every scheduled shard panic must fire");

    // Degraded, not Down: the victim is dead but the fleet serves on.
    let health = faulted.health();
    assert_eq!(health.state, HealthState::Degraded);
    assert_eq!(health.router, HealthState::Healthy);
    let victim = &health.shards[VICTIM];
    assert_eq!(victim.state, HealthState::Down);
    let down_after = u64::from(fleet_cfg().shard.down_after_crashes);
    assert_eq!(victim.worker_panics, down_after);
    // The final crash pushes the shard to Down, so it is the only one
    // not followed by a retry.
    assert_eq!(victim.worker_restarts, down_after - 1);
    assert!(victim
        .last_panic
        .as_deref()
        .is_some_and(|m| m.contains("shard1-panic")));
    for (i, row) in health.shards.iter().enumerate() {
        if i != VICTIM {
            assert_eq!(row.state, HealthState::Healthy, "survivor {i} unhealthy");
            assert_eq!(row.worker_panics, 0);
        }
    }

    // The victim's keyspace sheds (counted), and once Down its whole
    // sub-batches shed too.
    let shed = faulted.telemetry().snapshot().counter("shed_unhealthy");
    assert!(shed > 0, "lost sub-batches must be counted as shed");

    // Survivors are untouched: their local windows saw exactly the same
    // sub-log as in the fault-free run, so their local snapshots are
    // byte-identical.
    for i in 0..SHARDS {
        if i == VICTIM {
            continue;
        }
        assert_eq!(
            faulted.shards()[i].snapshot().canonical_bytes(),
            reference.shards()[i].snapshot().canonical_bytes(),
            "survivor shard {i} diverged from the fault-free run"
        );
    }

    // Interior survivor users still answer from their live shard; the
    // victim's users fall back to the (victim-less) fleet snapshot
    // rather than erroring.
    let fleet = faulted.fleet_snapshot();
    assert!(fleet.verdicts.num_flagged() > 0, "survivors still flag");
    for &(user, ..) in &fleet.verdicts.flagged {
        let _ = faulted.verdict(user);
    }
}

#[test]
fn threaded_router_survives_a_shard_kill() {
    let s = regional_stream();
    let plan = kill_plan(3);
    let router = ShardRouter::start_with_faults(
        fleet_cfg(),
        Partitioner::with_communities(SHARDS, 7, s.community_map()),
        s.blacklist.clone(),
        Arc::clone(&plan),
    );
    let handle = router.handle();
    for t in s.window(0, s.config.days) {
        // The gate stays open through the kill: only the victim's
        // keyspace sheds, everything else must be accepted.
        let _ = router.submit(*t);
    }
    let report = router.shutdown();
    assert!(plan.all_fired(), "every scheduled shard panic must fire");
    assert_eq!(report.state, HealthState::Degraded, "degraded, not down");
    let health = report.core.health();
    assert_eq!(health.shards[VICTIM].state, HealthState::Down);
    assert!(health
        .shards
        .iter()
        .enumerate()
        .all(|(i, r)| i == VICTIM || r.state == HealthState::Healthy));
    // The surviving fleet still serves flagged verdicts.
    let snap = report.core.fleet_snapshot();
    assert!(snap.verdicts.num_flagged() > 0);
    let flagged_user = snap.verdicts.flagged[0].0;
    assert!(matches!(
        handle.score(flagged_user),
        glp_serve::Verdict::Flagged { .. }
    ));
}
