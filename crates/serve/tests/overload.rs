//! Deterministic overload: a fixed offered schedule driven through the
//! ingest gate must admit exactly the same transaction sequence on every
//! run, under *both* shed policies, with burst detection active — burst
//! mode tightens batching and raises the health overlay, but admission
//! is a pure function of the schedule. The accepted prefix then feeds
//! the sharded fleet: 1-, 2-, and 4-shard runs over the admitted
//! sequence publish byte-identical verdict snapshots, so an adversary
//! flooding the gate cannot even perturb *which* verdicts the fleet
//! converges to, only how much organic load rides along.

use glp_fraud::Transaction;
use glp_serve::{
    ingest::ingest_pair, BurstState, FleetConfig, FleetCore, HealthMonitor, HealthThresholds,
    Partitioner, ServeConfig, ServiceCore, ShedPolicy, Telemetry,
};
use glp_test_support::adversarial_stream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Drives the whole adversarial stream through a small gate on a fixed
/// interleaved schedule — submit one, drain one from the queue every
/// third submission (a consumer that cannot keep up) — and returns the
/// admitted sequence in queue order plus the final telemetry. Entirely
/// single-threaded, so every admission decision is a pure function of
/// the schedule.
fn offered_schedule(policy: ShedPolicy, detect_bursts: bool) -> (Vec<Transaction>, Arc<Telemetry>) {
    let s = adversarial_stream();
    let cfg = ServeConfig {
        // A window small enough that the flood day overflows it many
        // times over, and burst windows short enough to evaluate often.
        queue_capacity: 64,
        burst_window: if detect_bursts { 128 } else { 0 },
        ..ServeConfig::default()
    };
    let health = Arc::new(HealthMonitor::new(HealthThresholds {
        shedding_after: 3,
        down_after: 8,
    }));
    let telemetry = Arc::new(Telemetry::new());
    let burst = BurstState::from_config(&cfg, Arc::clone(&health), Arc::clone(&telemetry));
    let (gate, rx) = ingest_pair(
        cfg.queue_capacity,
        policy,
        cfg.window_days,
        Arc::new(AtomicU32::new(0)),
        health,
        Arc::clone(&telemetry),
        burst,
    );
    let mut accepted = Vec::new();
    for (i, tx) in s.window(0, s.config.base.days).enumerate() {
        let _ = gate.submit(*tx);
        if i % 3 == 0 {
            if let Ok(item) = rx.try_recv() {
                accepted.push(item.tx);
            }
        }
    }
    while let Ok(item) = rx.try_recv() {
        accepted.push(item.tx);
    }
    (accepted, telemetry)
}

#[test]
fn admitted_sequence_is_deterministic_under_both_policies() {
    for policy in [ShedPolicy::DropOldest, ShedPolicy::RejectNew] {
        let (a, ta) = offered_schedule(policy, true);
        let (b, tb) = offered_schedule(policy, true);
        assert_eq!(a, b, "{policy:?}: admitted sequence must be reproducible");
        assert_eq!(
            ta.shed_total(),
            tb.shed_total(),
            "{policy:?}: shed accounting must be reproducible"
        );
        assert!(
            ta.shed_total() > 0,
            "{policy:?}: the schedule must actually overload the gate"
        );
        assert_eq!(
            ta.shed_overflow.load(Ordering::Relaxed),
            ta.shed_total(),
            "{policy:?}: the overflow roll-up must cover every overflow shed"
        );
        assert!(
            ta.bursts_detected.load(Ordering::Relaxed) > 0,
            "{policy:?}: the flood must trip the burst detector"
        );
    }
}

#[test]
fn burst_detection_does_not_change_admission() {
    for policy in [ShedPolicy::DropOldest, ShedPolicy::RejectNew] {
        let (with, _) = offered_schedule(policy, true);
        let (without, _) = offered_schedule(policy, false);
        assert_eq!(
            with, without,
            "{policy:?}: burst mode must not perturb admission"
        );
    }
}

/// The admitted prefix through a sharded fleet at fixed batch
/// boundaries, as canonical snapshot bytes (cf. `tests/determinism.rs`).
fn fleet_over_admitted(admitted: &[Transaction], shards: usize) -> Vec<Vec<u8>> {
    let s = adversarial_stream();
    let cfg = FleetConfig {
        shards,
        ..FleetConfig::default()
    }
    .with_window_days(10);
    let partitioner = Partitioner::with_communities(shards, 7, s.community_map());
    let core = FleetCore::new(cfg, partitioner, s.blacklist.clone());
    let mut snapshots = Vec::new();
    for (i, chunk) in admitted.chunks(400).enumerate() {
        core.apply_transactions(chunk);
        if (i + 1) % 4 == 0 {
            core.exchange_now();
            snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
        }
    }
    core.exchange_now();
    snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
    snapshots
}

#[test]
fn admitted_prefix_is_byte_identical_across_1_2_4_shards() {
    let (admitted, _) = offered_schedule(ShedPolicy::DropOldest, true);
    assert!(
        admitted.len() > 2_000,
        "enough must survive shedding to exercise the fleet"
    );

    // The unsharded reference over the same admitted prefix.
    let s = adversarial_stream();
    let core = ServiceCore::new(
        ServeConfig::default().with_window_days(10),
        s.blacklist.clone(),
    );
    let mut reference = Vec::new();
    for (i, chunk) in admitted.chunks(400).enumerate() {
        core.apply_transactions(chunk);
        if (i + 1) % 4 == 0 {
            core.recluster_now();
            reference.push(core.snapshot().canonical_bytes());
        }
    }
    core.recluster_now();
    reference.push(core.snapshot().canonical_bytes());

    let one = fleet_over_admitted(&admitted, 1);
    let two = fleet_over_admitted(&admitted, 2);
    let four = fleet_over_admitted(&admitted, 4);
    assert!(reference.len() > 2, "expected several published snapshots");
    assert_eq!(reference, one, "1-shard fleet differs from the reference");
    assert_eq!(reference, two, "2-shard fleet differs from the reference");
    assert_eq!(reference, four, "4-shard fleet differs from the reference");
}
