//! Serving determinism: the same seeded stream, fed at the same
//! micro-batch boundaries, must publish byte-identical verdict snapshots
//! no matter how many worker threads the LP engine shards across. This
//! lifts the engine's per-run bit-determinism guarantee up through the
//! whole serving stack — window maintenance, materialization, LP,
//! scoring, and snapshot encoding.

use glp_fraud::Transaction;
use glp_serve::{ServeConfig, ServiceCore};
// The workload is the standard deterministic fraud stream shared with
// the pipeline and golden-trace suites.
use glp_test_support::tx_stream as stream;

/// Drives one core through the stream at fixed batch boundaries
/// (`batch` transactions per apply), reclustering every 4 batches plus
/// once at the end, and returns every published snapshot's canonical
/// bytes.
fn run(shards: usize, batch: usize) -> Vec<Vec<u8>> {
    let s = stream();
    let cfg = ServeConfig {
        engine_shards: shards,
        ..ServeConfig::default()
    }
    .with_window_days(10);
    let core = ServiceCore::new(cfg, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let mut snapshots = Vec::new();
    for (i, chunk) in all.chunks(batch).enumerate() {
        core.apply_transactions(chunk);
        if (i + 1) % 4 == 0 {
            core.recluster_now();
            snapshots.push(core.snapshot().canonical_bytes());
        }
    }
    core.recluster_now();
    snapshots.push(core.snapshot().canonical_bytes());
    snapshots
}

#[test]
fn verdicts_identical_across_1_2_4_worker_threads() {
    let one = run(1, 500);
    let two = run(2, 500);
    let four = run(4, 500);
    assert!(one.len() > 3, "expected several published snapshots");
    assert_eq!(one, two, "1-thread vs 2-thread snapshots differ");
    assert_eq!(one, four, "1-thread vs 4-thread snapshots differ");
}

#[test]
fn repeated_runs_are_identical() {
    assert_eq!(run(2, 500), run(2, 500));
}
