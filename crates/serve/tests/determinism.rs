//! Serving determinism: the same seeded stream, fed at the same
//! micro-batch boundaries, must publish byte-identical verdict snapshots
//! no matter how many worker threads the LP engine shards across. This
//! lifts the engine's per-run bit-determinism guarantee up through the
//! whole serving stack — window maintenance, materialization, LP,
//! scoring, and snapshot encoding.

use glp_fraud::Transaction;
use glp_serve::{FleetConfig, FleetCore, Partitioner, ServeConfig, ServiceCore};
// The workload is the standard deterministic fraud stream shared with
// the pipeline and golden-trace suites.
use glp_test_support::{regional_stream, tx_stream as stream};

/// Drives one core through the stream at fixed batch boundaries
/// (`batch` transactions per apply), reclustering every 4 batches plus
/// once at the end, and returns every published snapshot's canonical
/// bytes.
fn run(shards: usize, batch: usize) -> Vec<Vec<u8>> {
    let s = stream();
    let cfg = ServeConfig {
        engine_shards: shards,
        ..ServeConfig::default()
    }
    .with_window_days(10);
    let core = ServiceCore::new(cfg, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let mut snapshots = Vec::new();
    for (i, chunk) in all.chunks(batch).enumerate() {
        core.apply_transactions(chunk);
        if (i + 1) % 4 == 0 {
            core.recluster_now();
            snapshots.push(core.snapshot().canonical_bytes());
        }
    }
    core.recluster_now();
    snapshots.push(core.snapshot().canonical_bytes());
    snapshots
}

#[test]
fn verdicts_identical_across_1_2_4_worker_threads() {
    let one = run(1, 500);
    let two = run(2, 500);
    let four = run(4, 500);
    assert!(one.len() > 3, "expected several published snapshots");
    assert_eq!(one, two, "1-thread vs 2-thread snapshots differ");
    assert_eq!(one, four, "1-thread vs 4-thread snapshots differ");
}

#[test]
fn repeated_runs_are_identical() {
    assert_eq!(run(2, 500), run(2, 500));
}

// ---------------------------------------------------------------------
// Router-level determinism: the same stream routed across N shard cores
// (with community-aware placement and cross-shard rings forcing real
// boundary exchanges) must publish byte-identical fleet snapshots for
// every N — and identical to a single unsharded ServiceCore.
// ---------------------------------------------------------------------

/// Drives the whole regional stream through a sharded [`FleetCore`] at
/// fixed batch boundaries, running a full exchange round every 4
/// batches plus once at the end, and returns every published fleet
/// snapshot's canonical bytes.
fn fleet_run(shards: usize, batch: usize) -> Vec<Vec<u8>> {
    let s = regional_stream();
    let cfg = FleetConfig {
        shards,
        ..FleetConfig::default()
    }
    .with_window_days(10);
    let partitioner = Partitioner::with_communities(shards, 7, s.community_map());
    let core = FleetCore::new(cfg, partitioner, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let mut snapshots = Vec::new();
    for (i, chunk) in all.chunks(batch).enumerate() {
        core.apply_transactions(chunk);
        if (i + 1) % 4 == 0 {
            core.exchange_now();
            snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
        }
    }
    core.exchange_now();
    snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
    snapshots
}

/// The unsharded reference: one ServiceCore over the same stream at the
/// same batch and recluster boundaries.
fn single_core_reference(batch: usize) -> Vec<Vec<u8>> {
    let s = regional_stream();
    let cfg = ServeConfig::default().with_window_days(10);
    let core = ServiceCore::new(cfg, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let mut snapshots = Vec::new();
    for (i, chunk) in all.chunks(batch).enumerate() {
        core.apply_transactions(chunk);
        if (i + 1) % 4 == 0 {
            core.recluster_now();
            snapshots.push(core.snapshot().canonical_bytes());
        }
    }
    core.recluster_now();
    snapshots.push(core.snapshot().canonical_bytes());
    snapshots
}

#[test]
fn fleet_verdicts_identical_across_1_2_4_shards() {
    let reference = single_core_reference(500);
    let one = fleet_run(1, 500);
    let two = fleet_run(2, 500);
    let four = fleet_run(4, 500);
    assert!(reference.len() > 3, "expected several published snapshots");
    assert_eq!(
        reference, one,
        "1-shard fleet differs from the unsharded reference"
    );
    assert_eq!(reference, two, "2-shard fleet differs from the reference");
    assert_eq!(reference, four, "4-shard fleet differs from the reference");
}

#[test]
fn repeated_fleet_runs_are_identical() {
    assert_eq!(fleet_run(2, 500), fleet_run(2, 500));
}
