//! Incremental ≡ full, pinned under randomized serving schedules.
//!
//! The incremental recluster path's whole contract is that every
//! published snapshot is **byte-identical** to what a from-scratch
//! recluster of the same window would publish. This suite drives
//! seeded-random batch sequences — random micro-batch sizes, random
//! recluster points, day advances that cross expiry boundaries, drift
//! caps that force full runs mid-stream — through paired cores: one
//! allowed to replay incrementally, one pinned to from-scratch
//! reclusters (`delta_fraction_max = 0.0`). Every published snapshot of
//! the pair must agree byte for byte, including at every forced-fallback
//! boundary, and the incremental core must have actually gone
//! incremental (the counters prove it).
//!
//! No external property-testing crate: a splitmix64 generator seeds the
//! schedules, so every failure reproduces from its printed seed.

use glp_fraud::Transaction;
use glp_serve::{FleetConfig, FleetCore, Partitioner, ReclusterMode, ServeConfig, ServiceCore};
use glp_test_support::{regional_stream, tx_stream};

/// Deterministic splitmix64 — enough randomness to vary schedules,
/// seeded so failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }
}

/// One seeded schedule: micro-batch sizes in `[50, 550)` and whether to
/// recluster after each batch (~1 in 3), identical for both cores of a
/// pair.
fn schedule(seed: u64, total: usize) -> Vec<(usize, bool)> {
    let mut rng = Rng(seed);
    let mut plan = Vec::new();
    let mut used = 0;
    while used < total {
        let size = rng.range(50, 550).min(total - used);
        used += size;
        plan.push((size, rng.range(0, 3) == 0));
    }
    plan
}

/// Drives one `ServiceCore` through the shared fraud stream under the
/// seeded schedule, returning every published snapshot's canonical
/// bytes plus how many runs went incremental/full.
fn run_single(seed: u64, cfg: ServeConfig) -> (Vec<Vec<u8>>, u64, u64) {
    let s = tx_stream();
    let core = ServiceCore::new(cfg, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let mut snapshots = Vec::new();
    let (mut incremental, mut full) = (0u64, 0u64);
    let mut offset = 0;
    for (size, recluster) in schedule(seed, all.len()) {
        core.apply_transactions(&all[offset..offset + size]);
        offset += size;
        if recluster {
            match core.recluster_now().mode {
                ReclusterMode::Incremental => incremental += 1,
                ReclusterMode::Full => full += 1,
            }
            snapshots.push(core.snapshot().canonical_bytes());
        }
    }
    core.recluster_now();
    snapshots.push(core.snapshot().canonical_bytes());
    (snapshots, incremental, full)
}

/// The paired configs: the incremental core accepts any frontier, the
/// reference core is pinned to from-scratch reclusters.
fn pair(mutate: impl Fn(&mut ServeConfig)) -> (ServeConfig, ServeConfig) {
    // A 6-day window over the 20-day stream crosses many expiry
    // boundaries, each a forced-fallback point the identity must survive.
    let mut inc = ServeConfig::default().with_window_days(6);
    inc.delta_fraction_max = 1.0;
    mutate(&mut inc);
    let mut full = inc.clone();
    full.delta_fraction_max = 0.0;
    (inc, full)
}

#[test]
fn random_schedules_publish_identical_bytes() {
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let (inc_cfg, full_cfg) = pair(|_| {});
        let (inc_snaps, incremental, _) = run_single(seed, inc_cfg);
        let (full_snaps, went_incremental, _) = run_single(seed, full_cfg);
        assert!(inc_snaps.len() > 3, "seed {seed:#x}: too few snapshots");
        assert_eq!(
            inc_snaps, full_snaps,
            "seed {seed:#x}: incremental and from-scratch snapshots diverged"
        );
        assert!(
            incremental > 0,
            "seed {seed:#x}: schedule never went incremental"
        );
        assert_eq!(
            went_incremental, 0,
            "seed {seed:#x}: the pinned core must never replay"
        );
    }
}

#[test]
fn drift_cap_fallbacks_stay_identical() {
    // full_recluster_every = 2 forces a from-scratch run after every
    // second replay — the drift-cap boundary must be invisible in the
    // published bytes, and both modes must actually occur.
    let seed = 0x5EED_00CAu64;
    let (inc_cfg, full_cfg) = pair(|c| c.full_recluster_every = 2);
    let (inc_snaps, incremental, full) = run_single(seed, inc_cfg);
    let (full_snaps, _, _) = run_single(seed, full_cfg);
    assert_eq!(inc_snaps, full_snaps, "drift-cap fallback changed bytes");
    assert!(incremental > 0 && full > 0, "both modes must occur");
}

/// Direction-optimized execution is invisible to the delta path: the
/// incremental replay must publish byte-identical snapshots no matter
/// which [`FrontierMode`] the memoized full runs (and the replays
/// themselves) executed under — forced push, forced pull, per-iteration
/// auto, or dense. Every mode is compared against the dense pinned-full
/// reference, so this also re-proves full-run direction invariance
/// through the serving stack.
#[test]
fn direction_mode_is_invisible_to_incremental_replay() {
    use glp_core::FrontierMode;
    let seed = 0x5EED_00D1u64;
    let (_, dense_full) = pair(|c| c.frontier = FrontierMode::Dense);
    let (reference, _, _) = run_single(seed, dense_full);
    for mode in [
        FrontierMode::Dense,
        FrontierMode::Push,
        FrontierMode::Pull,
        FrontierMode::Auto,
    ] {
        let (inc_cfg, _) = pair(|c| c.frontier = mode);
        let (snaps, incremental, _) = run_single(seed, inc_cfg);
        assert_eq!(
            snaps, reference,
            "{mode:?}: incremental snapshots diverged from the dense pinned-full reference"
        );
        assert!(incremental > 0, "{mode:?}: schedule never went incremental");
    }
}

#[test]
fn telemetry_counts_the_decisions() {
    let (inc_cfg, _) = pair(|_| {});
    let s = tx_stream();
    let core = ServiceCore::new(inc_cfg, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    for chunk in all.chunks(400) {
        core.apply_transactions(chunk);
        core.recluster_now();
    }
    let t = core.telemetry().snapshot();
    assert!(
        t.counter("reclusters_incremental") > 0,
        "steady small batches must replay incrementally"
    );
    assert!(
        t.counter("reclusters_full") > 0,
        "expiry boundaries must fall back to full"
    );
    assert_eq!(
        t.counter("reclusters_incremental") + t.counter("reclusters_full"),
        (all.len() as u64).div_ceil(400),
        "every recluster records exactly one mode decision"
    );
}

// ---------------------------------------------------------------------
// Fleet-level identity: the same randomized schedules through sharded
// fleets at 1, 2, and 4 shards, incremental against pinned-full — the
// delta path must also hold through routing, per-shard windows, and the
// cached boundary recluster.
// ---------------------------------------------------------------------

/// Drives one fleet through the regional stream under the seeded
/// schedule (exchange rounds at the schedule's recluster points),
/// returning every published fleet snapshot's canonical bytes plus the
/// fleet-wide incremental-recluster count.
fn run_fleet(seed: u64, shards: usize, shard_cfg: ServeConfig) -> (Vec<Vec<u8>>, u64) {
    let s = regional_stream();
    let cfg = FleetConfig {
        shards,
        shard: shard_cfg,
        ..FleetConfig::default()
    };
    let partitioner = Partitioner::with_communities(shards, 7, s.community_map());
    let core = FleetCore::new(cfg, partitioner, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let mut snapshots = Vec::new();
    let mut offset = 0;
    for (size, exchange) in schedule(seed, all.len()) {
        core.apply_transactions(&all[offset..offset + size]);
        offset += size;
        if exchange {
            core.exchange_now();
            snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
        }
    }
    core.exchange_now();
    snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
    (
        snapshots,
        core.fleet_telemetry().counter("reclusters_incremental"),
    )
}

#[test]
fn fleet_random_schedules_publish_identical_bytes() {
    let seed = 0x5EED_F1EEu64;
    let mut inc = ServeConfig::default().with_window_days(8);
    inc.delta_fraction_max = 1.0;
    let mut full = inc.clone();
    full.delta_fraction_max = 0.0;
    for shards in [1usize, 2, 4] {
        let (inc_snaps, incremental) = run_fleet(seed, shards, inc.clone());
        let (full_snaps, pinned) = run_fleet(seed, shards, full.clone());
        assert!(inc_snaps.len() > 2, "{shards} shards: too few snapshots");
        assert_eq!(
            inc_snaps, full_snaps,
            "{shards} shards: incremental fleet diverged from pinned-full"
        );
        assert!(
            incremental > 0,
            "{shards} shards: fleet never went incremental"
        );
        assert_eq!(pinned, 0, "{shards} shards: pinned fleet must never replay");
    }
}
