//! Checkpoint/restore pins: a run interrupted at batch `k` and resumed
//! from a checkpoint must produce **byte-identical** LP output to the
//! uninterrupted run, at the core level and through the threaded
//! service's `recover` path.
//!
//! The pin works because the window materializes by replaying its live
//! transaction log through the shared single-pass graph construction:
//! the final snapshot depends only on the surviving transactions and
//! their order, not on where batch (or process) boundaries fell.

use glp_fraud::checkpoint::{CheckpointError, WindowCheckpoint};
use glp_fraud::{Transaction, TxConfig, TxStream};
use glp_serve::{FraudService, HealthState, ServeConfig, ServiceCore, ShedPolicy};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn stream() -> TxStream {
    TxStream::generate(&TxConfig {
        num_users: 1_200,
        num_items: 500,
        days: 20,
        tx_per_day: 700,
        num_rings: 3,
        ring_size: 10,
        ring_tx_per_day: 30,
        blacklist_fraction: 0.25,
        ..Default::default()
    })
}

fn cfg() -> ServeConfig {
    ServeConfig {
        queue_capacity: 1 << 16,
        max_batch: 256,
        batch_budget: Duration::from_millis(2),
        shed_policy: ShedPolicy::RejectNew,
        recluster_every_batches: 4,
        engine_shards: 2,
        ..ServeConfig::default()
    }
    .with_window_days(10)
}

fn temp_ckpt(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glp_{}_{}.ckpt", name, std::process::id()))
}

#[test]
fn interrupted_core_resumes_byte_identical() {
    let s = stream();
    let days = s.config.days;
    let split = 8;

    // Uninterrupted reference: one core sees every day.
    let reference = ServiceCore::new(cfg(), s.blacklist.clone());
    for day in 0..days {
        let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
        reference.apply_transactions(&txs);
    }
    reference.recluster_now();
    let want = reference.snapshot().canonical_bytes();

    // Interrupted run: apply the first `split` days, checkpoint, and
    // drop the core — the "kill" half of kill-then-recover.
    let path = temp_ckpt("core_resume");
    {
        let core = ServiceCore::new(cfg(), s.blacklist.clone());
        for day in 0..split {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            core.apply_transactions(&txs);
        }
        core.checkpoint(&path).expect("checkpoint writes");
        assert_eq!(
            core.telemetry().checkpoints_written.load(Ordering::Relaxed),
            1
        );
    }

    // Recover into a fresh core and feed it the rest of the stream.
    let ckpt = WindowCheckpoint::read(&path).expect("checkpoint reads back");
    let core = ServiceCore::restore(cfg(), s.blacklist.clone(), &ckpt).expect("restores");
    assert_eq!(core.batches_applied(), u64::from(split), "clock resumes");
    assert_eq!(core.staleness_batches(), 0, "restore reclusters first");
    assert_eq!(core.health().state, HealthState::Healthy);
    for day in split..days {
        let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
        core.apply_transactions(&txs);
    }
    core.recluster_now();
    assert_eq!(
        core.snapshot().canonical_bytes(),
        want,
        "recovered run must score identically to the uninterrupted run"
    );
    // Counters continued from the checkpoint: `batches` covers the whole
    // stream even though this core only applied the tail.
    assert_eq!(
        core.telemetry().batches.load(Ordering::Relaxed),
        u64::from(days)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn threaded_recover_serves_the_checkpointed_verdicts() {
    let s = stream();
    let path = temp_ckpt("threaded_recover");
    let mut c = cfg();
    c.checkpoint_path = Some(path.clone());
    c.checkpoint_every_batches = 8;

    let service = FraudService::start(c.clone(), s.blacklist.clone());
    for t in s.window(0, s.config.days) {
        service.submit(*t).expect("large queue, no shed");
    }
    let report = service.shutdown();
    assert!(report.clean());
    let want = report.core.snapshot().canonical_bytes();
    let batches = report.core.batches_applied();
    let epoch = report.core.epoch();
    assert!(
        report
            .core
            .telemetry()
            .checkpoints_written
            .load(Ordering::Relaxed)
            >= 1,
        "shutdown leaves a final checkpoint"
    );

    // Kill-then-recover: a brand-new service resumes from the file and
    // immediately serves the same verdicts.
    let revived =
        FraudService::recover(c, s.blacklist.clone(), &path).expect("recover from checkpoint");
    let snap = revived.core().snapshot();
    assert_eq!(
        snap.canonical_bytes(),
        want,
        "recovered service must serve byte-identical verdicts"
    );
    assert_eq!(revived.core().batches_applied(), batches);
    assert!(
        revived.core().epoch() > epoch,
        "epoch numbering continues across the restart"
    );
    assert_eq!(revived.health().state, HealthState::Healthy);
    let report = revived.shutdown();
    assert!(report.clean());
    std::fs::remove_file(&path).ok();
}

#[test]
fn recover_rejects_missing_and_mismatched_checkpoints() {
    let s = stream();
    let missing = temp_ckpt("definitely_missing");
    assert!(matches!(
        FraudService::recover(cfg(), s.blacklist.clone(), &missing),
        Err(CheckpointError::Io(_))
    ));

    // A checkpoint for a different window length must be refused, not
    // silently reinterpreted.
    let path = temp_ckpt("mismatched_days");
    let core = ServiceCore::new(cfg(), s.blacklist.clone());
    let txs: Vec<Transaction> = s.window(0, 1).copied().collect();
    core.apply_transactions(&txs);
    core.checkpoint(&path).expect("checkpoint writes");
    let other = cfg().with_window_days(7);
    assert!(matches!(
        FraudService::recover(other, s.blacklist.clone(), &path),
        Err(CheckpointError::Invalid(_))
    ));
    std::fs::remove_file(&path).ok();
}
