//! Fault-injection pins (feature `fault-injection`): every recovery
//! claim the fault-tolerance layer makes is demonstrated against an
//! injected fault, not asserted on faith.
//!
//! The central pin: a batcher panic at a seeded batch index, caught and
//! restarted by the supervisor, yields a final snapshot **byte-identical**
//! to the fault-free run — the panic hook fires before the batch is
//! drained, so the queued transactions survive the crash and recovery is
//! lossless by construction.

#![cfg(feature = "fault-injection")]

use glp_fraud::{TxConfig, TxStream};
use glp_serve::{
    Fault, FaultPlan, FaultSpec, FraudScorer, FraudService, HealthState, ServeConfig, ShedPolicy,
    Verdict, WorkerOutcome,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn stream() -> TxStream {
    TxStream::generate(&TxConfig {
        num_users: 1_200,
        num_items: 500,
        days: 20,
        tx_per_day: 700,
        num_rings: 3,
        ring_size: 10,
        ring_tx_per_day: 30,
        blacklist_fraction: 0.25,
        ..Default::default()
    })
}

fn cfg() -> ServeConfig {
    ServeConfig {
        // Large enough that nothing sheds: byte-identity across runs
        // requires both runs to apply the same transactions.
        queue_capacity: 1 << 16,
        max_batch: 256,
        batch_budget: Duration::from_millis(2),
        shed_policy: ShedPolicy::RejectNew,
        recluster_every_batches: 4,
        engine_shards: 2,
        restart_backoff: Duration::from_millis(1),
        restart_backoff_cap: Duration::from_millis(20),
        ..ServeConfig::default()
    }
    .with_window_days(10)
}

fn run_to_bytes(service: FraudService, s: &TxStream) -> (Vec<u8>, Arc<glp_serve::ServiceCore>) {
    for t in s.window(0, s.config.days) {
        service.submit(*t).expect("large queue, no shed");
    }
    let report = service.shutdown();
    let core = report.core;
    (core.snapshot().canonical_bytes(), core)
}

#[test]
fn seeded_batcher_panic_recovers_byte_identical() {
    let s = stream();

    // Fault-free reference run.
    let (want, _) = run_to_bytes(FraudService::start(cfg(), s.blacklist.clone()), &s);

    // Same traffic with a seeded batcher panic somewhere in the first
    // 8 batches (the exact index is derived from the seed, so the
    // schedule is reproducible but not hand-picked).
    let plan = Arc::new(FaultPlan::seeded(
        42,
        &FaultSpec {
            batcher_panics: 1,
            batch_horizon: 8,
            ..FaultSpec::default()
        },
    ));
    let scheduled = plan.scheduled();
    assert!(matches!(scheduled[0], Fault::BatcherPanic { at_batch } if at_batch >= 1));
    let service = FraudService::start_with_faults(cfg(), s.blacklist.clone(), Arc::clone(&plan));
    let (got, core) = run_to_bytes(service, &s);

    assert!(plan.all_fired(), "the scheduled panic must actually fire");
    let t = core.telemetry();
    assert_eq!(t.worker_panics.load(Ordering::Relaxed), 1);
    assert_eq!(t.worker_restarts.load(Ordering::Relaxed), 1);
    assert_eq!(core.health().state, HealthState::Healthy, "streak reset");
    assert_eq!(
        got, want,
        "supervised restart must converge to the fault-free verdicts"
    );
}

#[test]
fn crash_loop_goes_down_but_queries_survive() {
    let s = stream();
    let mut c = cfg();
    c.shedding_after_crashes = 2;
    c.down_after_crashes = 3;
    // Three panics pinned to batch 0: the batcher never makes progress,
    // so each restart re-fires until the restart budget is exhausted.
    let plan = Arc::new(FaultPlan::new([
        Fault::BatcherPanic { at_batch: 0 },
        Fault::BatcherPanic { at_batch: 0 },
        Fault::BatcherPanic { at_batch: 0 },
    ]));
    let service = FraudService::start_with_faults(c, s.blacklist.clone(), Arc::clone(&plan));
    let handle = service.handle();

    let deadline = Instant::now() + Duration::from_secs(10);
    while service.health().state != HealthState::Down {
        assert!(Instant::now() < deadline, "service never went Down");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(plan.all_fired());

    // Ingest is closed — shed, counted — but queries still answer from
    // the last published snapshot (here: the initial empty one).
    let tx = *s.window(0, 1).next().expect("stream has transactions");
    assert!(service.submit(tx).is_err(), "Down service sheds");
    assert!(matches!(handle.score(tx.buyer), Verdict::Unknown));
    let h = service.health();
    assert_eq!(h.consecutive_crashes, 3);
    assert!(h
        .last_panic
        .expect("panic recorded")
        .contains("batcher-panic@batch0"));

    let report = service.shutdown();
    assert_eq!(report.state, HealthState::Down);
    match report.batcher {
        WorkerOutcome::Abandoned {
            panics,
            ref last_panic,
        } => {
            assert_eq!(panics, 3);
            assert!(last_panic.contains("batcher-panic@batch0"));
        }
        ref o => panic!("expected Abandoned batcher, got {o:?}"),
    }
    let t = report.core.telemetry();
    assert!(t.shed_unhealthy.load(Ordering::Relaxed) >= 1);
    assert_eq!(t.worker_panics.load(Ordering::Relaxed), 3);
    assert_eq!(
        t.worker_restarts.load(Ordering::Relaxed),
        2,
        "no restart after Down"
    );
}

#[test]
fn panic_inside_apply_poisons_and_recovers() {
    let s = stream();
    // Panic while holding the window mutex: the lock is poisoned and the
    // batch in hand is lost, but every later lock acquisition recovers
    // the poison and the service keeps scoring.
    let plan = Arc::new(FaultPlan::new([Fault::PanicInApply { at_batch: 1 }]));
    let service = FraudService::start_with_faults(cfg(), s.blacklist.clone(), Arc::clone(&plan));
    for t in s.window(0, s.config.days) {
        service.submit(*t).expect("large queue, no shed");
    }
    let report = service.shutdown();
    assert!(plan.all_fired());
    assert_eq!(report.batcher, WorkerOutcome::Clean { panics: 1 });
    assert_eq!(report.state, HealthState::Healthy);
    let core = report.core;
    let snap = core.snapshot();
    // One batch died with the panic; the rest of the stream still
    // flowed through the poisoned-then-recovered lock.
    assert_eq!(snap.window_end, s.config.days);
    assert!(snap.num_flagged() > 0, "scoring still works after poison");
}

#[test]
fn corrupt_transaction_is_shed_by_apply_validation() {
    let s = stream();
    let plan = Arc::new(FaultPlan::new([Fault::CorruptTx { at_batch: 1 }]));
    let service = FraudService::start_with_faults(cfg(), s.blacklist.clone(), Arc::clone(&plan));
    for t in s.window(0, s.config.days) {
        service.submit(*t).expect("large queue, no shed");
    }
    let report = service.shutdown();
    assert!(plan.all_fired());
    assert!(report.clean(), "corruption must not crash anything");
    let t = report.core.telemetry();
    assert_eq!(
        t.rejected_invalid.load(Ordering::Relaxed),
        1,
        "the corrupted record is shed, counted, exactly once"
    );
    assert_eq!(report.core.snapshot().window_end, s.config.days);
}

#[test]
fn checkpoint_write_failure_is_counted_not_fatal() {
    let s = stream();
    let path = std::env::temp_dir().join(format!("glp_ckpt_fail_{}.ckpt", std::process::id()));
    let mut c = cfg();
    c.checkpoint_path = Some(path.clone());
    c.checkpoint_every_batches = 4;
    let plan = Arc::new(FaultPlan::new([Fault::CheckpointFail { at_batch: 4 }]));
    let service = FraudService::start_with_faults(c, s.blacklist.clone(), Arc::clone(&plan));
    for t in s.window(0, s.config.days) {
        service.submit(*t).expect("large queue, no shed");
    }
    let report = service.shutdown();
    assert!(plan.all_fired());
    assert!(report.clean(), "a failed checkpoint write is not a crash");
    let t = report.core.telemetry();
    assert_eq!(t.checkpoint_failures.load(Ordering::Relaxed), 1);
    assert!(
        t.checkpoints_written.load(Ordering::Relaxed) >= 1,
        "later checkpoints (and the shutdown checkpoint) still land"
    );
    // The surviving checkpoint on disk is valid.
    assert!(glp_fraud::checkpoint::WindowCheckpoint::read(&path).is_ok());
    std::fs::remove_file(&path).ok();
}
