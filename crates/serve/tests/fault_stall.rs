//! Recluster-stall injection (feature `fault-injection`), isolated in
//! its own test binary because the injected kernel stall is armed
//! through `glp-gpusim`'s process-global hook — the whole stack above
//! the simulated device experiences a slow card.
//!
//! Pins the staleness gate's contract under a slow recluster: verdict
//! staleness is *bounded* (the batcher stops applying), overload turns
//! into counted shedding at the full queue, and `health()` reports
//! `Degraded` while the served snapshot is stale — then everything
//! recovers once the stalled recluster completes.

#![cfg(feature = "fault-injection")]

use glp_serve::{Fault, FaultPlan, FraudService, HealthState, ServeConfig, ShedPolicy};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn recluster_stall_degrades_health_and_sheds_bounded() {
    let s = glp_fraud::TxStream::generate(&glp_fraud::TxConfig {
        num_users: 1_000,
        num_items: 400,
        days: 20,
        tx_per_day: 600,
        num_rings: 2,
        ring_size: 8,
        ring_tx_per_day: 20,
        blacklist_fraction: 0.25,
        ..Default::default()
    });
    let cfg = ServeConfig {
        // Tiny queue + tight staleness bound: a stalled recluster must
        // visibly stop the batcher and fill the queue.
        queue_capacity: 64,
        max_batch: 64,
        batch_budget: Duration::from_millis(1),
        shed_policy: ShedPolicy::RejectNew,
        recluster_every_batches: 1,
        max_staleness_batches: 2,
        engine_shards: 1,
        ..ServeConfig::default()
    }
    .with_window_days(10);

    // Stall the *second* recluster for 400 ms at the device layer.
    let plan = Arc::new(FaultPlan::new([Fault::ReclusterStall {
        at_recluster: 1,
        millis: 400,
    }]));
    let service = FraudService::start_with_faults(cfg, s.blacklist.clone(), Arc::clone(&plan));

    // Pump traffic until the stall bites: we must observe Degraded
    // health (stale snapshot) and counted shedding (full queue) while
    // the stalled recluster is in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_degraded = false;
    let mut rejected = 0u64;
    'outer: loop {
        for t in s.window(0, s.config.days) {
            if service.submit(*t).is_err() {
                rejected += 1;
            }
            let h = service.health();
            if h.state >= HealthState::Degraded && h.staleness_batches >= 2 {
                saw_degraded = true;
            }
            if saw_degraded && rejected > 0 {
                break 'outer;
            }
            assert!(
                Instant::now() < deadline,
                "never observed Degraded + shedding under a 400ms stall \
                 (fired: {:?})",
                plan.fired()
            );
        }
    }

    let report = service.shutdown();
    assert!(plan.all_fired(), "the scheduled stall must have fired");
    assert!(
        glp_gpusim::faults::stalls_served() >= 1,
        "the stall was served at the device layer"
    );
    assert!(report.clean(), "a slow recluster is not a crash");
    let t = report.core.telemetry();
    // Every locally observed rejection is either a full-queue shed or —
    // when the pump loop wraps the stream after the watermark advanced —
    // a day-regression rejection; both are counted, nothing is silent.
    assert_eq!(
        t.shed_rejected_new.load(Ordering::Relaxed) + t.rejected_invalid.load(Ordering::Relaxed),
        rejected
    );
    assert!(t.shed_rejected_new.load(Ordering::Relaxed) > 0);
    assert_eq!(t.worker_panics.load(Ordering::Relaxed), 0);
    // Shutdown ran a final recluster, so the service recovered to
    // freshness after the stall.
    assert_eq!(report.core.staleness_batches(), 0);
    assert_eq!(report.core.health().state, HealthState::Healthy);
}
