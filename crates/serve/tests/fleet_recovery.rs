//! Fleet checkpoint/restore pins: a sharded fleet interrupted mid-stream
//! and restored from its per-shard `<base>.shard<i>` images must resume
//! **byte-identical** to the uninterrupted run, and a single-core
//! checkpoint must migrate onto a fleet (the scale-out path) without
//! changing a single verdict byte.

use glp_fraud::checkpoint::WindowCheckpoint;
use glp_fraud::Transaction;
use glp_serve::{
    FleetConfig, FleetCore, HealthState, Partitioner, ServeConfig, ServiceCore, ShardRouter,
};
use glp_test_support::regional_stream;
use std::path::{Path, PathBuf};

const SHARDS: usize = 2;

fn temp_base(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glp_fleet_{}_{}.ckpt", name, std::process::id()))
}

fn fleet_cfg(base: &Path) -> FleetConfig {
    let mut cfg = FleetConfig {
        shards: SHARDS,
        exchange_every_batches: 8,
        ..FleetConfig::default()
    }
    .with_window_days(10);
    cfg.shard.checkpoint_path = Some(base.to_path_buf());
    cfg
}

fn cleanup(base: &Path) {
    for i in 0..SHARDS {
        let mut p = base.as_os_str().to_owned();
        p.push(format!(".shard{i}"));
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
    let _ = std::fs::remove_file(base);
}

#[test]
fn interrupted_fleet_resumes_byte_identical() {
    let s = regional_stream();
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let split = all.len() / 2;
    let base = temp_base("resume");
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());

    // Uninterrupted reference.
    let reference = FleetCore::new(fleet_cfg(&base), partitioner(), s.blacklist.clone());
    for chunk in all.chunks(500) {
        reference.apply_transactions(chunk);
    }
    reference.exchange_now();

    // Interrupted run: checkpoint every shard at the split, drop the
    // fleet, restore, and replay the rest.
    {
        let first = FleetCore::new(fleet_cfg(&base), partitioner(), s.blacklist.clone());
        for chunk in all[..split].chunks(500) {
            first.apply_transactions(chunk);
        }
        first.checkpoint_all().expect("fleet checkpoint");
    }
    let resumed = FleetCore::restore(fleet_cfg(&base), partitioner(), s.blacklist.clone())
        .expect("fleet restore");
    for chunk in all[split..].chunks(500) {
        resumed.apply_transactions(chunk);
    }
    resumed.exchange_now();

    assert_eq!(
        resumed.fleet_snapshot().verdicts.canonical_bytes(),
        reference.fleet_snapshot().verdicts.canonical_bytes(),
        "restored fleet diverged from the uninterrupted run"
    );
    // Per-shard local state restored exactly, not just the merged view.
    for i in 0..SHARDS {
        assert_eq!(
            resumed.shards()[i].snapshot().canonical_bytes(),
            reference.shards()[i].snapshot().canonical_bytes(),
            "shard {i} local snapshot diverged after restore"
        );
    }
    cleanup(&base);
}

#[test]
fn single_core_checkpoint_migrates_onto_a_fleet() {
    let s = regional_stream();
    let all: Vec<Transaction> = s.window(0, s.config.days).copied().collect();
    let base = temp_base("migrate");

    // A single unsharded core serves the whole stream, then snapshots.
    let single_cfg = ServeConfig::default().with_window_days(10);
    let single = ServiceCore::new(single_cfg, s.blacklist.clone());
    for chunk in all.chunks(500) {
        single.apply_transactions(chunk);
    }
    single.recluster_now();
    single.checkpoint(&base).expect("single-core checkpoint");

    // Scale out: split the image across a fleet and reconcile.
    let ckpt = WindowCheckpoint::read(&base).expect("read image");
    let fleet = FleetCore::migrate_from_single(
        fleet_cfg(&base),
        Partitioner::with_communities(SHARDS, 7, s.community_map()),
        s.blacklist.clone(),
        &ckpt,
    )
    .expect("migrate");

    assert_eq!(
        fleet.fleet_snapshot().verdicts.canonical_bytes(),
        single.snapshot().canonical_bytes(),
        "migration changed verdicts"
    );
    assert_eq!(fleet.window_end(), s.config.days);
    cleanup(&base);
}

#[test]
fn threaded_fleet_recovers_from_its_shutdown_checkpoints() {
    let s = regional_stream();
    let base = temp_base("recover");
    let partitioner = || Partitioner::with_communities(SHARDS, 7, s.community_map());

    let router = ShardRouter::start(fleet_cfg(&base), partitioner(), s.blacklist.clone());
    for t in s.window(0, s.config.days) {
        router.submit(*t).expect("fleet accepts while running");
    }
    let report = router.shutdown();
    assert!(report.clean());
    let before = report.core.fleet_snapshot().verdicts.canonical_bytes();

    let recovered = ShardRouter::recover(fleet_cfg(&base), partitioner(), s.blacklist.clone())
        .expect("fleet recover");
    assert_eq!(recovered.health().state, HealthState::Healthy);
    assert_eq!(
        recovered.core().fleet_snapshot().verdicts.canonical_bytes(),
        before,
        "recovered fleet diverged from the pre-shutdown snapshot"
    );
    let report = recovered.shutdown();
    assert!(report.clean());
    cleanup(&base);
}
