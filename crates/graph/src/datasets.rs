//! Dataset registry reproducing the structural signatures of Table 2.
//!
//! Each paper dataset maps to a generator family and a scale divisor: both
//! |V| and |E| are divided by the same factor, which preserves the average
//! degree — the property Table 2 reports and the optimizations key off.
//! Default divisors keep every dataset generatable and runnable on a laptop
//! while preserving each dataset's role in the evaluation (roadNet stays the
//! constant-low-degree outlier, aligraph stays the extreme-density outlier,
//! twitter stays the largest).

use crate::csr::Graph;
use crate::gen::{
    bipartite_interaction, community_powerlaw, rmat, road_network, BipartiteConfig,
    CommunityPowerLawConfig, RmatConfig, RoadConfig,
};

/// The eight evaluation datasets of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// dblp collaboration network: small, modular, power-law.
    Dblp,
    /// roadNet: near-constant degree 2.8 — the warp-optimization showcase.
    RoadNet,
    /// youtube social network.
    Youtube,
    /// aligraph user–item interactions: average degree 3991.8 — the
    /// shared-memory-optimization showcase.
    Aligraph,
    /// LiveJournal social network.
    Ljournal,
    /// uk-2002 web crawl.
    Uk2002,
    /// English Wikipedia link graph.
    WikiEn,
    /// twitter follower graph: the largest (1.47 B edges in the paper).
    Twitter,
}

/// Generator family backing a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFamily {
    /// Power-law with planted communities (social networks).
    Social,
    /// Partial 2-D lattice (road networks).
    Road,
    /// R-MAT (web crawls).
    Web,
    /// Dense Zipf bipartite (interaction graphs).
    Interaction,
}

/// Registry entry: paper-reported sizes plus generation parameters.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Which dataset this mirrors.
    pub id: DatasetId,
    /// Table 2 name.
    pub name: &'static str,
    /// |V| as reported in Table 2.
    pub paper_vertices: u64,
    /// |E| as reported in Table 2. For the undirected datasets Table 2
    /// counts *pairs* and its "Ave-Degree" column equals `2|E|/|V|`
    /// (aligraph: 2·29,804,566/14,933 = 3991.8); for the directed web
    /// graphs (uk-2002, wiki-en, twitter) it counts directed edges and
    /// Ave-Degree = `|E|/|V|` (twitter: 1.468B/41.65M = 35.3).
    pub paper_edges: u64,
    /// Whether the original dataset is a directed graph (see
    /// [`Self::paper_edges`]).
    pub directed: bool,
    /// Generator family.
    pub family: GraphFamily,
    /// Default scale divisor applied to both |V| and |E|.
    pub default_scale: u64,
}

impl DatasetSpec {
    /// Average degree as Table 2 reports it (invariant under scaling).
    pub fn paper_avg_degree(&self) -> f64 {
        let mult = if self.directed { 1.0 } else { 2.0 };
        mult * self.paper_edges as f64 / self.paper_vertices as f64
    }

    /// Generates the dataset at its default scale.
    pub fn generate(&self) -> Graph {
        self.generate_scaled(self.default_scale)
    }

    /// Generates the dataset with |V| and |E| divided by `scale`
    /// (`scale = 1` reproduces paper-sized graphs; larger is smaller).
    ///
    /// # Panics
    /// Panics if `scale` is 0.
    pub fn generate_scaled(&self, scale: u64) -> Graph {
        assert!(scale > 0, "scale divisor must be positive");
        let v = (self.paper_vertices / scale).max(64) as usize;
        // Stored (directed) edge target: twice the pair count for
        // undirected datasets, |E| as-is for directed ones.
        let mult = if self.directed { 1 } else { 2 };
        let e = (mult * self.paper_edges / scale).max(256);
        let avg = e as f64 / v as f64;
        let seed = 0x617 + self.id as u64; // fixed per-dataset seed
        match self.family {
            GraphFamily::Social => community_powerlaw(&CommunityPowerLawConfig {
                num_vertices: v,
                avg_degree: avg,
                gamma: 2.3,
                num_communities: (v / 150).max(4),
                mixing: 0.08,
                seed,
            }),
            GraphFamily::Road => {
                let side = (v as f64).sqrt().round() as usize;
                road_network(&RoadConfig {
                    width: side.max(2),
                    height: side.max(2),
                    keep: (avg / 4.0).min(1.0),
                    seed,
                })
            }
            GraphFamily::Web => {
                let scale_log2 = (v as f64).log2().round().max(6.0) as u32;
                let n = 1usize << scale_log2;
                rmat(&RmatConfig {
                    scale: scale_log2,
                    num_edges: ((avg * n as f64) / 2.0) as usize,
                    a: 0.57,
                    b: 0.19,
                    c: 0.19,
                    seed,
                })
            }
            GraphFamily::Interaction => {
                let users = v * 2 / 3;
                bipartite_interaction(&BipartiteConfig {
                    num_users: users.max(8),
                    num_items: (v - users).max(8),
                    num_interactions: (e / 2) as usize,
                    skew: 0.6,
                    seed,
                })
            }
        }
    }
}

/// All eight Table 2 datasets in the paper's order.
pub fn table2() -> Vec<DatasetSpec> {
    use DatasetId::*;
    use GraphFamily::*;
    vec![
        DatasetSpec {
            id: Dblp,
            name: "dblp",
            paper_vertices: 317_080,
            paper_edges: 1_049_866,
            directed: false,
            family: Social,
            default_scale: 1,
        },
        DatasetSpec {
            id: RoadNet,
            name: "roadNet",
            paper_vertices: 1_965_206,
            paper_edges: 2_766_607,
            directed: false,
            family: Road,
            default_scale: 1,
        },
        DatasetSpec {
            id: Youtube,
            name: "youtube",
            paper_vertices: 1_134_890,
            paper_edges: 2_987_624,
            directed: false,
            family: Social,
            default_scale: 1,
        },
        DatasetSpec {
            id: Aligraph,
            name: "aligraph",
            paper_vertices: 14_933,
            paper_edges: 29_804_566,
            directed: false,
            family: Interaction,
            default_scale: 8,
        },
        DatasetSpec {
            id: Ljournal,
            name: "ljournal",
            paper_vertices: 3_997_962,
            paper_edges: 34_681_189,
            directed: false,
            family: Social,
            default_scale: 8,
        },
        DatasetSpec {
            id: Uk2002,
            name: "uk-2002",
            paper_vertices: 18_520_486,
            paper_edges: 298_113_762,
            directed: true,
            family: Web,
            default_scale: 64,
        },
        DatasetSpec {
            id: WikiEn,
            name: "wiki-en",
            paper_vertices: 15_150_976,
            paper_edges: 378_142_420,
            directed: true,
            family: Web,
            default_scale: 64,
        },
        DatasetSpec {
            id: Twitter,
            name: "twitter",
            paper_vertices: 41_652_230,
            paper_edges: 1_468_365_182,
            directed: true,
            family: Social,
            default_scale: 128,
        },
    ]
}

/// Looks a dataset up by its Table 2 name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    table2().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn registry_has_eight_in_paper_order() {
        let t = table2();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].name, "dblp");
        assert_eq!(t[7].name, "twitter");
    }

    #[test]
    fn aligraph_is_density_outlier() {
        let t = table2();
        let ali = by_name("aligraph").unwrap();
        for d in &t {
            if d.name != "aligraph" {
                assert!(ali.paper_avg_degree() > 10.0 * d.paper_avg_degree());
            }
        }
    }

    #[test]
    fn scaled_generation_preserves_avg_degree_signature() {
        // Use heavier scaling so the test stays fast.
        let road = by_name("roadNet").unwrap().generate_scaled(16);
        let s = degree_stats(&road);
        assert!(
            (s.avg_degree - 2.8).abs() < 0.4,
            "roadNet avg {}",
            s.avg_degree
        );
        assert!(s.max_degree <= 4);

        let ali = by_name("aligraph").unwrap().generate_scaled(64);
        let sa = degree_stats(&ali);
        assert!(sa.avg_degree > 50.0, "aligraph avg {}", sa.avg_degree);
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name("orkut").is_none());
    }

    #[test]
    fn generation_deterministic() {
        let spec = by_name("dblp").unwrap();
        let g1 = spec.generate_scaled(32);
        let g2 = spec.generate_scaled(32);
        assert_eq!(g1.incoming().targets(), g2.incoming().targets());
    }
}
