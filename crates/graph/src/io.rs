//! Graph serialization: text edge lists and a binary CSR snapshot.
//!
//! Two formats cover the two real needs:
//!
//! * **Edge-list text** (`.el`) — the interchange format of SNAP/KONECT,
//!   the collections the paper's datasets come from: one `src dst
//!   [weight]` pair per line, `#` comments. Reading one is how a user
//!   points this library at a real dataset.
//! * **Binary CSR** (`.glpg`) — a fast mmap-friendly snapshot (magic +
//!   header + raw arrays, little-endian) so benchmark graphs regenerate
//!   once and reload in milliseconds.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, Graph};
use crate::types::{EdgeId, VertexId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary snapshot format.
const MAGIC: &[u8; 8] = b"GLPGRAPH";
/// Snapshot format version.
const VERSION: u32 = 1;

/// Errors from graph I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Text/binary content is not a valid graph.
    Format(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Options for edge-list parsing.
#[derive(Clone, Copy, Debug)]
pub struct EdgeListOptions {
    /// Treat the input as undirected (symmetrize).
    pub undirected: bool,
    /// Merge duplicate pairs (summing weights).
    pub dedup: bool,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        Self {
            undirected: true,
            dedup: true,
        }
    }
}

/// Reads a SNAP/KONECT-style edge list: whitespace-separated
/// `src dst [weight]` per line; lines starting with `#` or `%` are
/// comments. Vertex ids may be sparse; the graph covers `0..=max_id`.
pub fn read_edge_list(r: impl Read, opts: EdgeListOptions) -> Result<Graph, IoError> {
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut max_id: VertexId = 0;
    let mut weighted = false;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> Result<VertexId, IoError> {
            s.ok_or_else(|| IoError::Format(format!("line {}: missing {what}", lineno + 1)))?
                .parse()
                .map_err(|e| IoError::Format(format!("line {}: bad {what}: {e}", lineno + 1)))
        };
        let src = parse(it.next(), "source")?;
        let dst = parse(it.next(), "target")?;
        let w = match it.next() {
            Some(s) => {
                weighted = true;
                s.parse::<f32>()
                    .map_err(|e| IoError::Format(format!("line {}: bad weight: {e}", lineno + 1)))?
            }
            None => 1.0,
        };
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst, w));
    }
    if edges.is_empty() {
        return Err(IoError::Format("no edges in input".to_string()));
    }
    let mut b = GraphBuilder::with_capacity(max_id as usize + 1, edges.len());
    for (s, d, w) in edges {
        if weighted {
            b.add_weighted_edge(s, d, w);
        } else {
            b.add_edge(s, d);
        }
    }
    b.symmetrize(opts.undirected).dedup(opts.dedup);
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(
    path: impl AsRef<Path>,
    opts: EdgeListOptions,
) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?, opts)
}

/// Writes the graph's incoming view as an edge list (`dst src` per stored
/// edge becomes `src dst`, i.e. the file round-trips through
/// [`read_edge_list`] with `undirected: false`).
pub fn write_edge_list(g: &Graph, w: impl Write) -> Result<(), IoError> {
    let mut out = BufWriter::new(w);
    writeln!(out, "# glp edge list: {} vertices", g.num_vertices())?;
    let csr = g.incoming();
    for v in 0..g.num_vertices() as VertexId {
        let ws = csr.neighbor_weights(v);
        for (k, &u) in csr.neighbors(v).iter().enumerate() {
            match ws {
                Some(ws) => writeln!(out, "{u} {v} {}", ws[k])?,
                None => writeln!(out, "{u} {v}")?,
            }
        }
    }
    out.flush()?;
    Ok(())
}

fn put_u32(out: &mut impl Write, x: u32) -> io::Result<()> {
    out.write_all(&x.to_le_bytes())
}

fn put_u64(out: &mut impl Write, x: u64) -> io::Result<()> {
    out.write_all(&x.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes the binary CSR snapshot (incoming view; directedness flag and
/// weights preserved).
pub fn write_binary(g: &Graph, w: impl Write) -> Result<(), IoError> {
    let mut out = BufWriter::new(w);
    out.write_all(MAGIC)?;
    put_u32(&mut out, VERSION)?;
    let csr = g.incoming();
    let flags = u32::from(g.is_undirected()) | (u32::from(csr.is_weighted()) << 1);
    put_u32(&mut out, flags)?;
    put_u64(&mut out, g.num_vertices() as u64)?;
    put_u64(&mut out, csr.num_edges())?;
    for &o in csr.offsets() {
        put_u64(&mut out, o)?;
    }
    for &t in csr.targets() {
        put_u32(&mut out, t)?;
    }
    if let Some(ws) = csr.weights() {
        for &x in ws {
            put_u32(&mut out, x.to_bits())?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Reads a binary CSR snapshot written by [`write_binary`].
pub fn read_binary(r: impl Read) -> Result<Graph, IoError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::Format("not a glp graph snapshot".to_string()));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let flags = get_u32(&mut r)?;
    let undirected = flags & 1 == 1;
    let weighted = flags & 2 == 2;
    let n = get_u64(&mut r)? as usize;
    let e = get_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(get_u64(&mut r)? as EdgeId);
    }
    let mut targets = Vec::with_capacity(e);
    for _ in 0..e {
        targets.push(get_u32(&mut r)?);
    }
    let weights = if weighted {
        let mut ws = Vec::with_capacity(e);
        for _ in 0..e {
            ws.push(f32::from_bits(get_u32(&mut r)?));
        }
        Some(ws)
    } else {
        None
    };
    let csr = Csr::from_parts(offsets, targets, weights);
    Ok(if undirected {
        Graph::undirected(csr)
    } else {
        Graph::directed_from_incoming(csr)
    })
}

/// Writes the binary snapshot to a file path.
pub fn write_binary_file(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Reads the binary snapshot from a file path.
pub fn read_binary_file(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{community_powerlaw, CommunityPowerLawConfig};

    #[test]
    fn edge_list_roundtrip_unweighted() {
        let text = "# comment\n% other comment\n0 1\n1 2\n2 0\n";
        let g = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // symmetrized
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(
            out.as_slice(),
            EdgeListOptions {
                undirected: false,
                dedup: false,
            },
        )
        .unwrap();
        assert_eq!(g2.incoming().targets(), g.incoming().targets());
    }

    #[test]
    fn edge_list_weights_parsed() {
        let text = "0 1 2.5\n1 2 0.5\n";
        let g = read_edge_list(
            text.as_bytes(),
            EdgeListOptions {
                undirected: false,
                dedup: false,
            },
        )
        .unwrap();
        assert!(g.incoming().is_weighted());
        assert_eq!(g.incoming().neighbor_weights(1).unwrap(), &[2.5]);
    }

    #[test]
    fn edge_list_errors_are_located() {
        let bad = "0 1\nx 2\n";
        let err = read_edge_list(bad.as_bytes(), EdgeListOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let empty = "# nothing\n";
        assert!(read_edge_list(empty.as_bytes(), EdgeListOptions::default()).is_err());
    }

    #[test]
    fn binary_roundtrip_exact() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 500,
            avg_degree: 7.0,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.incoming().offsets(), g.incoming().offsets());
        assert_eq!(g2.incoming().targets(), g.incoming().targets());
        assert_eq!(g2.is_undirected(), g.is_undirected());
    }

    #[test]
    fn binary_roundtrip_weighted_directed() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.5)
            .add_weighted_edge(2, 3, -2.25)
            .add_weighted_edge(3, 1, 0.125);
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert!(!g2.is_undirected());
        assert_eq!(g2.incoming().weights(), g.incoming().weights());
        assert_eq!(g2.outgoing().neighbors(3), g.outgoing().neighbors(3));
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(read_binary(&b"NOTAGRPH"[..]).is_err());
        let mut buf = Vec::new();
        write_binary(&crate::gen::path(4), &mut buf).unwrap();
        buf[8] = 99; // break the version
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = crate::gen::path(10);
        let path = std::env::temp_dir().join("glp_io_test.glpg");
        write_binary_file(&g, &path).unwrap();
        let g2 = read_binary_file(&path).unwrap();
        assert_eq!(g2.incoming().targets(), g.incoming().targets());
        let _ = std::fs::remove_file(&path);
    }
}
