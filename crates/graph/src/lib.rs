//! # glp-graph — graph substrate for the GLP reproduction
//!
//! This crate provides everything the GLP framework needs to represent and
//! manufacture graphs:
//!
//! * [`Csr`] / [`Graph`] — compressed-sparse-row adjacency exactly as the
//!   paper stores it on the GPU (offset + target arrays, optional edge
//!   weights), with both incoming and outgoing neighbor views. Label
//!   propagation scans *incoming* neighbors `N(v)` (paper §2.1).
//! * [`builder::GraphBuilder`] — edge-list ingestion with deduplication,
//!   self-loop removal and symmetrization.
//! * [`gen`] — seeded synthetic generators covering the structural families
//!   of the paper's evaluation datasets: power-law community graphs
//!   (dblp/youtube/ljournal/twitter), web graphs (uk-2002/wiki-en), road
//!   networks (roadNet), and dense interaction graphs (aligraph), plus
//!   deterministic helper topologies for tests.
//! * [`datasets`] — a registry reproducing Table 2 and Table 4 signatures at
//!   a configurable scale.
//! * [`stats`] — degree statistics used to size kernel dispatch buckets.
//! * [`partition`] — vertex-range partitioning for the hybrid out-of-core
//!   mode and the multi-GPU / distributed execution models.
//! * [`io`] — SNAP/KONECT-style edge-list parsing (point the library at a
//!   real dataset) and a fast binary CSR snapshot format.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod partition;
pub mod stats;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::{Csr, Graph};
pub use types::{EdgeId, Label, VertexId, INVALID_LABEL, INVALID_VERTEX};
