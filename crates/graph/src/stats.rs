//! Degree statistics.
//!
//! Used by the engines to size kernel-dispatch buckets (low/mid/high degree,
//! paper §5.3) and by the benchmark harness to print Table 2.

use crate::csr::Graph;
use crate::types::VertexId;

/// Summary degree statistics of a graph's incoming view.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of stored directed edges.
    pub num_edges: u64,
    /// |E|/|V|.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_degree: u32,
    /// Median in-degree.
    pub median_degree: u32,
    /// Fraction of vertices with degree < 32 (the paper's low-degree
    /// threshold for the warp optimization).
    pub frac_low_degree: f64,
    /// Fraction of vertices with degree > 128 (the paper's high-degree
    /// threshold for the shared-memory optimization).
    pub frac_high_degree: f64,
}

/// Computes [`DegreeStats`] for `g`.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_vertices();
    let mut degs: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max_degree = degs.iter().copied().max().unwrap_or(0);
    let low = degs.iter().filter(|&&d| d < 32).count();
    let high = degs.iter().filter(|&&d| d > 128).count();
    let mid = n / 2;
    let median_degree = if n == 0 {
        0
    } else {
        *degs.select_nth_unstable(mid).1
    };
    DegreeStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        avg_degree: g.avg_degree(),
        max_degree,
        median_degree,
        frac_low_degree: low as f64 / n.max(1) as f64,
        frac_high_degree: high as f64 / n.max(1) as f64,
    }
}

/// Log2-bucketed degree histogram: `hist[k]` counts vertices with degree in
/// `[2^k, 2^(k+1))`; `hist[0]` also includes degree-0 vertices.
pub fn degree_histogram(g: &Graph) -> Vec<u64> {
    let mut hist = vec![0u64; 33];
    for v in 0..g.num_vertices() as VertexId {
        let d = g.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            32 - (d - 1).leading_zeros() as usize
        };
        hist[bucket] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

/// Rough maximum-likelihood estimate of the power-law exponent over degrees
/// >= `dmin` (Clauset-style continuous approximation). Returns `None` when
/// > fewer than 10 vertices qualify.
pub fn powerlaw_alpha(g: &Graph, dmin: u32) -> Option<f64> {
    let dmin = dmin.max(1);
    let mut count = 0usize;
    let mut logsum = 0.0f64;
    for v in 0..g.num_vertices() as VertexId {
        let d = g.degree(v);
        if d >= dmin {
            count += 1;
            logsum += (f64::from(d) / f64::from(dmin)).ln();
        }
    }
    (count >= 10).then(|| 1.0 + count as f64 / logsum.max(f64::EPSILON))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{community_powerlaw, star, CommunityPowerLawConfig};

    #[test]
    fn stats_on_star() {
        let g = star(100);
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 100);
        assert_eq!(s.max_degree, 99);
        assert_eq!(s.median_degree, 1);
        assert!((s.frac_low_degree - 0.99).abs() < 1e-9);
        assert!((s.frac_high_degree - 0.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let g = star(100); // hub degree 99 -> bucket 7 ([64,128)); spokes deg 1 -> bucket 0
        let h = degree_histogram(&g);
        assert_eq!(h[0], 99);
        assert_eq!(h[7], 1);
        assert_eq!(h.iter().sum::<u64>(), 100);
    }

    #[test]
    fn alpha_estimate_in_plausible_range() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 20_000,
            avg_degree: 10.0,
            gamma: 2.3,
            ..Default::default()
        });
        let alpha = powerlaw_alpha(&g, 8).expect("enough tail vertices");
        assert!(alpha > 1.5 && alpha < 4.5, "alpha {alpha}");
    }

    #[test]
    fn alpha_none_on_tiny_graph() {
        let g = star(5);
        assert!(powerlaw_alpha(&g, 10).is_none());
    }
}
