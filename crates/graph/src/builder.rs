//! Edge-list ingestion: deduplication, self-loop policy, symmetrization.
//!
//! The pipeline's graphs arrive as transaction edge lists (paper Figure 1);
//! this builder is the single path from raw edges to the CSR layout every
//! engine consumes.

use crate::csr::{Csr, Graph};
use crate::types::{EdgeId, VertexId};

/// Accumulates edges and produces a [`Graph`].
///
/// ```
/// use glp_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).add_edge(1, 2).symmetrize(true);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 4); // both directions stored
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Option<Vec<f32>>,
    symmetrize: bool,
    dedup: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Starts a builder for a graph over vertices `0..num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            weights: None,
            symmetrize: false,
            dedup: false,
            keep_self_loops: false,
        }
    }

    /// Pre-allocates edge capacity.
    pub fn with_capacity(num_vertices: usize, edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(edges);
        b
    }

    /// Adds a directed edge `src -> dst`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range, or if the builder already
    /// holds weighted edges (mixing weighted and unweighted is rejected).
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src},{dst}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(
            self.weights.is_none(),
            "builder already holds weighted edges"
        );
        self.edges.push((src, dst));
        self
    }

    /// Adds a weighted directed edge.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: f32) -> &mut Self {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src},{dst}) out of range for {} vertices",
            self.num_vertices
        );
        let weights = self.weights.get_or_insert_with(Vec::new);
        assert_eq!(
            weights.len(),
            self.edges.len(),
            "cannot mix weighted and unweighted edges"
        );
        self.edges.push((src, dst));
        weights.push(w);
        self
    }

    /// Bulk-adds unweighted edges.
    pub fn extend_edges(
        &mut self,
        it: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> &mut Self {
        assert!(
            self.weights.is_none(),
            "builder already holds weighted edges"
        );
        self.edges.extend(it);
        self
    }

    /// Store each edge in both directions (Table 2's graphs are symmetrized;
    /// |E| counts both directions).
    pub fn symmetrize(&mut self, yes: bool) -> &mut Self {
        self.symmetrize = yes;
        self
    }

    /// Collapse duplicate (src,dst) pairs. Duplicate weighted edges sum
    /// their weights (multiple transactions between the same pair become one
    /// heavier edge, as the fraud pipeline does).
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// Keep self loops (dropped by default — LP over a self loop is a no-op
    /// that only inflates the vertex's own label count).
    pub fn keep_self_loops(&mut self, yes: bool) -> &mut Self {
        self.keep_self_loops = yes;
        self
    }

    /// Number of edges currently staged (before symmetrize/dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the graph. Undirected output shares one CSR for both views;
    /// directed output derives the outgoing view by transposition.
    pub fn build(self) -> Graph {
        let n = self.num_vertices;
        let weighted = self.weights.is_some();
        // Materialize (dst, src, w) triples for the *incoming* CSR: the CSR is
        // indexed by the vertex whose neighbors LP scans, i.e. edge src->dst
        // contributes src to N(dst).
        let mut triples: Vec<(VertexId, VertexId, f32)> =
            Vec::with_capacity(self.edges.len() * if self.symmetrize { 2 } else { 1 });
        for (i, &(s, d)) in self.edges.iter().enumerate() {
            if s == d && !self.keep_self_loops {
                continue;
            }
            let w = self.weights.as_ref().map_or(1.0, |ws| ws[i]);
            triples.push((d, s, w));
            if self.symmetrize && s != d {
                triples.push((s, d, w));
            }
        }
        triples.sort_unstable_by_key(|a| (a.0, a.1));
        if self.dedup {
            let mut out: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(triples.len());
            for t in triples {
                match out.last_mut() {
                    Some(last) if last.0 == t.0 && last.1 == t.1 => last.2 += t.2,
                    _ => out.push(t),
                }
            }
            triples = out;
        }
        let mut offsets = vec![0 as EdgeId; n + 1];
        for &(v, _, _) in &triples {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<VertexId> = triples.iter().map(|t| t.1).collect();
        let weights = weighted.then(|| triples.iter().map(|t| t.2).collect());
        let incoming = Csr::from_parts(offsets, targets, weights);
        if self.symmetrize {
            Graph::undirected(incoming)
        } else {
            Graph::directed_from_incoming(incoming)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incoming_orientation() {
        // edge 0->1 means 0 ∈ N(1)
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(2, 1);
        let g = b.build();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(0), &[] as &[VertexId]);
        // outgoing view has 1 ∈ N'(0)
        assert_eq!(g.outgoing().neighbors(0), &[1]);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2).symmetrize(true);
        let g = b.build();
        assert!(g.is_undirected());
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn dedup_sums_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 1.0)
            .add_weighted_edge(0, 1, 2.5)
            .dedup(true);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.incoming().neighbor_weights(1).unwrap(), &[3.5]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0).add_edge(0, 1);
        assert_eq!(b.staged_edges(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);

        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0).add_edge(0, 1).keep_self_loops(true);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn dedup_unweighted_collapses() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(0, 1).add_edge(0, 1).dedup(true);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn symmetrized_self_loop_kept_once_when_enabled() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1).symmetrize(true).keep_self_loops(true);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        GraphBuilder::new(2).add_edge(0, 5);
    }

    #[test]
    fn neighbors_sorted_after_build() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 0).add_edge(1, 0).add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }
}
