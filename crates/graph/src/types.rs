//! Fundamental identifier types shared across the workspace.
//!
//! The paper runs on graphs up to ~1 billion vertices and ~10 billion edges.
//! Vertex identifiers fit in `u32` at the scales this reproduction runs
//! (every dataset is generated scaled-down; see `DESIGN.md`), while edge
//! offsets use `u64` so the CSR layout itself is billion-edge capable — the
//! same choice CUDA implementations make to halve adjacency memory traffic.

/// Vertex identifier. 32 bits: adjacency arrays dominate graph memory and
/// GPU global-memory traffic, so the narrowest sufficient type wins.
pub type VertexId = u32;

/// Community label carried by each vertex. Labels start out equal to the
/// vertex id (classic LP initialization) so they share the width.
pub type Label = u32;

/// Edge index / CSR offset. 64 bits so the format itself supports graphs
/// beyond 4B edges even though `VertexId` is 32 bits.
pub type EdgeId = u64;

/// Sentinel for "no vertex" (e.g. padding lanes in a warp).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// Sentinel for "no label" (e.g. unlabeled vertices in seeded LP).
pub const INVALID_LABEL: Label = Label::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_distinct_from_small_ids() {
        assert_ne!(INVALID_VERTEX, 0);
        assert_ne!(INVALID_LABEL, 0);
        assert_eq!(INVALID_VERTEX, u32::MAX);
    }
}
