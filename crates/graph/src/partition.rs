//! Graph partitioning for out-of-core and distributed execution.
//!
//! Two schemes back two different parts of the paper:
//!
//! * [`partition_by_edges`] — contiguous vertex ranges with a bounded edge
//!   count, used by the CPU–GPU hybrid mode (§3.1) to stream a graph that
//!   exceeds device memory through the GPU chunk by chunk, and by the
//!   multi-GPU mode (§5.4) to split work across devices.
//! * [`hash_partition`] — modulo vertex ownership, used by the simulated
//!   in-house distributed solution (§5.4), which is how production BSP graph
//!   systems shard vertices.

use crate::csr::Graph;
use crate::types::VertexId;

/// A contiguous vertex range `[start, end)` together with its incoming-edge
/// span `[edge_start, edge_end)` in the CSR target array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexRange {
    /// First vertex in the range.
    pub start: VertexId,
    /// One past the last vertex.
    pub end: VertexId,
    /// CSR offset of the first edge owned by this range.
    pub edge_start: u64,
    /// CSR offset one past the last edge.
    pub edge_end: u64,
}

impl VertexRange {
    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Number of incoming edges covered.
    pub fn num_edges(&self) -> u64 {
        self.edge_end - self.edge_start
    }
}

/// Splits vertices into contiguous ranges whose incoming-edge counts do not
/// exceed `max_edges` (a single vertex with more edges than the budget gets
/// its own range — the hybrid engine then streams its neighbor list).
///
/// # Panics
/// Panics if `max_edges` is 0.
pub fn partition_by_edges(g: &Graph, max_edges: u64) -> Vec<VertexRange> {
    assert!(max_edges > 0, "edge budget must be positive");
    let csr = g.incoming();
    let n = csr.num_vertices();
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < n {
        let edge_start = csr.offset(start as VertexId);
        let mut end = start;
        while end < n {
            let next_edges = csr.offset(end as VertexId + 1) - edge_start;
            if next_edges > max_edges && end > start {
                break;
            }
            end += 1;
            if next_edges > max_edges {
                break; // single oversized vertex gets its own range
            }
        }
        ranges.push(VertexRange {
            start: start as VertexId,
            end: end as VertexId,
            edge_start,
            edge_end: csr.offset(end as VertexId),
        });
        start = end;
    }
    ranges
}

/// Splits vertices into `k` near-equal contiguous ranges by *edge* count
/// (balanced work, not balanced vertex count) — the multi-GPU split.
pub fn partition_even(g: &Graph, k: usize) -> Vec<VertexRange> {
    assert!(k > 0, "need at least one partition");
    let csr = g.incoming();
    let n = csr.num_vertices();
    let total = csr.num_edges();
    let per = total.div_ceil(k as u64).max(1);
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k {
        if start >= n {
            // Degenerate: more partitions than needed; emit empty tail ranges.
            let off = csr.offset(n as VertexId);
            ranges.push(VertexRange {
                start: n as VertexId,
                end: n as VertexId,
                edge_start: off,
                edge_end: off,
            });
            continue;
        }
        let target = ((i as u64 + 1) * per).min(total);
        let mut end = start + 1;
        while end < n && csr.offset(end as VertexId) < target {
            end += 1;
        }
        if i == k - 1 {
            end = n;
        }
        ranges.push(VertexRange {
            start: start as VertexId,
            end: end as VertexId,
            edge_start: csr.offset(start as VertexId),
            edge_end: csr.offset(end as VertexId),
        });
        start = end;
    }
    ranges
}

/// Assigns each vertex an owner machine `v % k` — the sharding the simulated
/// in-house distributed solution uses.
pub fn hash_partition(num_vertices: usize, k: usize) -> Vec<u32> {
    assert!(k > 0, "need at least one machine");
    (0..num_vertices).map(|v| (v % k) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{community_powerlaw, star, CommunityPowerLawConfig};

    #[test]
    fn ranges_cover_all_vertices_and_edges() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 2_000,
            avg_degree: 8.0,
            ..Default::default()
        });
        let ranges = partition_by_edges(&g, 500);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end as usize, g.num_vertices());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_eq!(w[0].edge_end, w[1].edge_start);
        }
        let total: u64 = ranges.iter().map(VertexRange::num_edges).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn budget_respected_except_oversized_singletons() {
        let g = star(100); // hub has degree 99
        let ranges = partition_by_edges(&g, 10);
        for r in &ranges {
            assert!(r.num_edges() <= 10 || r.num_vertices() == 1);
        }
    }

    #[test]
    fn even_partition_balances_edges() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 5_000,
            avg_degree: 10.0,
            ..Default::default()
        });
        let parts = partition_even(&g, 4);
        assert_eq!(parts.len(), 4);
        let total: u64 = parts.iter().map(VertexRange::num_edges).sum();
        assert_eq!(total, g.num_edges());
        let max = parts.iter().map(VertexRange::num_edges).max().unwrap();
        let min = parts.iter().map(VertexRange::num_edges).min().unwrap();
        assert!(max < 2 * min.max(1), "imbalanced: {min}..{max}");
    }

    #[test]
    fn even_partition_more_parts_than_vertices() {
        let g = star(3);
        let parts = partition_even(&g, 8);
        assert_eq!(parts.len(), 8);
        let total: u64 = parts.iter().map(VertexRange::num_edges).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn hash_partition_round_robin() {
        let owners = hash_partition(10, 3);
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
    }
}
