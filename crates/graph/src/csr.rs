//! Compressed-sparse-row graph storage.
//!
//! The paper (§3.1, Figure 2) stores the graph in CSR format on the GPU:
//! an `offsets` array of length `|V|+1` and a `targets` array of length
//! `|E|`, so the neighbors of vertex `v` occupy
//! `targets[offsets[v] .. offsets[v+1]]`. Edge weights, when present, are a
//! parallel array (structure-of-arrays layout for coalesced access, as the
//! paper advises for user-defined data).

use crate::types::{EdgeId, VertexId};

/// One adjacency direction in CSR form.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<EdgeId>,
    targets: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

impl Csr {
    /// Builds a CSR from raw parts.
    ///
    /// # Panics
    /// Panics if the offsets are not monotonically non-decreasing, do not
    /// start at 0, do not end at `targets.len()`, or if `weights` is present
    /// with a length different from `targets`.
    pub fn from_parts(
        offsets: Vec<EdgeId>,
        targets: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as EdgeId,
            "offsets must end at |E|"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), targets.len(), "weights must align with targets");
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges stored.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Start of `v`'s neighbor run in [`Self::targets`].
    #[inline]
    pub fn offset(&self, v: VertexId) -> EdgeId {
        self.offsets[v as usize]
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Edge weights of `v`'s neighbor run, if the graph is weighted.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[f32]> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.weights.as_ref().map(|w| &w[lo..hi])
    }

    /// Full offsets array (length `|V|+1`).
    #[inline]
    pub fn offsets(&self) -> &[EdgeId] {
        &self.offsets
    }

    /// Full targets array (length `|E|`).
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Full weights array, if present.
    #[inline]
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Whether this CSR carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Bytes this CSR occupies — used to decide whether a graph fits in the
    /// modeled GPU memory (hybrid mode trigger, paper §3.1).
    pub fn size_bytes(&self) -> u64 {
        let mut b = (self.offsets.len() * std::mem::size_of::<EdgeId>()) as u64
            + (self.targets.len() * std::mem::size_of::<VertexId>()) as u64;
        if let Some(w) = &self.weights {
            b += (w.len() * std::mem::size_of::<f32>()) as u64;
        }
        b
    }

    /// Builds the reverse (transposed) CSR via counting sort — O(|V|+|E|).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0u64; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = self
            .weights
            .as_ref()
            .map(|_| vec![0f32; self.targets.len()]);
        for v in 0..n {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            for e in lo..hi {
                let t = self.targets[e] as usize;
                let pos = cursor[t] as usize;
                cursor[t] += 1;
                targets[pos] = v as VertexId;
                if let (Some(dst), Some(src)) = (&mut weights, &self.weights) {
                    dst[pos] = src[e];
                }
            }
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }
}

/// A graph with the adjacency views label propagation needs.
///
/// LP reads the labels of *incoming* neighbors `N(v)` (paper §2.1). For the
/// undirected graphs of the evaluation the two directions coincide and only
/// one CSR is stored; directed graphs additionally keep the outgoing view
/// `N'(v)` for algorithms (and the fraud pipeline) that need it.
#[derive(Clone, Debug)]
pub struct Graph {
    incoming: Csr,
    outgoing: Option<Csr>,
}

impl Graph {
    /// Wraps a symmetric CSR: incoming and outgoing views are identical.
    pub fn undirected(csr: Csr) -> Self {
        Self {
            incoming: csr,
            outgoing: None,
        }
    }

    /// Wraps a directed graph given its incoming view; the outgoing view is
    /// derived by transposition.
    pub fn directed_from_incoming(incoming: Csr) -> Self {
        let outgoing = incoming.transpose();
        Self {
            incoming,
            outgoing: Some(outgoing),
        }
    }

    /// Wraps a directed graph given both views. Callers must guarantee they
    /// are transposes of each other.
    pub fn directed(incoming: Csr, outgoing: Csr) -> Self {
        assert_eq!(incoming.num_vertices(), outgoing.num_vertices());
        assert_eq!(incoming.num_edges(), outgoing.num_edges());
        Self {
            incoming,
            outgoing: Some(outgoing),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.incoming.num_vertices()
    }

    /// Number of stored directed edges (an undirected edge counts twice,
    /// matching how Table 2 reports |E| for symmetrized graphs).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.incoming.num_edges()
    }

    /// Average degree |E|/|V| as Table 2 reports it.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_vertices().max(1) as f64
    }

    /// Incoming-neighbor view `N(v)` — what LP scans.
    #[inline]
    pub fn incoming(&self) -> &Csr {
        &self.incoming
    }

    /// Outgoing-neighbor view `N'(v)`.
    #[inline]
    pub fn outgoing(&self) -> &Csr {
        self.outgoing.as_ref().unwrap_or(&self.incoming)
    }

    /// Whether the graph is stored symmetric (undirected).
    #[inline]
    pub fn is_undirected(&self) -> bool {
        self.outgoing.is_none()
    }

    /// In-degree of `v` (what determines LP kernel dispatch).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.incoming.degree(v)
    }

    /// Incoming neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.incoming.neighbors(v)
    }

    /// Total CSR bytes (both directions when stored).
    pub fn size_bytes(&self) -> u64 {
        self.incoming.size_bytes() + self.outgoing.as_ref().map_or(0, Csr::size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_parts(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3], None)
    }

    #[test]
    fn basic_accessors() {
        let c = diamond();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(3), 0);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn transpose_roundtrip() {
        let c = diamond();
        let t = c.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        let back = t.transpose();
        assert_eq!(back.offsets(), c.offsets());
        assert_eq!(back.targets(), c.targets());
    }

    #[test]
    fn transpose_preserves_weights() {
        let c = Csr::from_parts(
            vec![0, 2, 3, 4, 4],
            vec![1, 2, 3, 3],
            Some(vec![0.5, 1.5, 2.5, 3.5]),
        );
        let t = c.transpose();
        assert_eq!(t.neighbor_weights(3).unwrap(), &[2.5, 3.5]);
        assert_eq!(t.neighbor_weights(1).unwrap(), &[0.5]);
    }

    #[test]
    #[should_panic(expected = "offsets must end at |E|")]
    fn bad_offsets_rejected() {
        Csr::from_parts(vec![0, 5], vec![1, 2], None);
    }

    #[test]
    fn graph_views() {
        let g = Graph::directed_from_incoming(diamond());
        assert!(!g.is_undirected());
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.outgoing().neighbors(3), &[1, 2]);
        let u = Graph::undirected(diamond());
        assert!(u.is_undirected());
        // outgoing() falls back to the same CSR
        assert_eq!(u.outgoing().neighbors(0), &[1, 2]);
    }

    #[test]
    fn size_bytes_counts_both_views() {
        let g = Graph::directed_from_incoming(diamond());
        let u = Graph::undirected(diamond());
        assert!(g.size_bytes() > u.size_bytes());
        assert_eq!(u.size_bytes(), (5 * 8 + 4 * 4) as u64);
    }
}
