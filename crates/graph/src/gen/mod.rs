//! Seeded synthetic graph generators.
//!
//! The paper evaluates on eight public graphs plus TaoBao production
//! workloads (Tables 2 and 4). This reproduction cannot ship those datasets,
//! so each is substituted by a generator matching its *structural signature*
//! — the properties the evaluation's effects actually depend on:
//!
//! * degree distribution family (power-law exponent / constant degree /
//!   extreme density), which drives the low-degree warp optimization and the
//!   high-degree shared-memory optimization;
//! * community structure, which drives LP convergence and the
//!   "neighbors share labels" property behind the CMS+HT design (§4.1).
//!
//! All generators are deterministic given their seed.

pub mod bipartite;
pub mod powerlaw;
pub mod rmat;
pub mod road;
pub mod simple;

pub use bipartite::{bipartite_interaction, BipartiteConfig};
pub use powerlaw::{community_powerlaw, community_powerlaw_with_truth, CommunityPowerLawConfig};
pub use rmat::{rmat, RmatConfig};
pub use road::{road_network, RoadConfig};
pub use simple::{caveman, complete, cycle, path, star, two_cliques_bridge};
