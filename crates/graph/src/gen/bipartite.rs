//! Bipartite interaction-graph generator.
//!
//! Substitutes for aligraph (Table 2: 14,933 vertices, 29.8M edges, average
//! degree 3991.8 — by far the densest dataset) and for the user–product
//! transaction graphs of the fraud pipeline. Vertices split into two sides
//! (users / items); every edge connects a Zipf-drawn user to a Zipf-drawn
//! item, producing the extreme-average-degree regime where the shared-memory
//! CMS+HT optimization shines (7.4x on aligraph, Table 3).

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::gen::powerlaw::CumSampler;
use crate::types::VertexId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`bipartite_interaction`].
#[derive(Clone, Debug)]
pub struct BipartiteConfig {
    /// Number of "user"-side vertices (ids `0..num_users`).
    pub num_users: usize,
    /// Number of "item"-side vertices (ids `num_users..num_users+num_items`).
    pub num_items: usize,
    /// Number of interactions (undirected pairs before symmetrization).
    pub num_interactions: usize,
    /// Zipf skew on both sides (0 = uniform; 1 ≈ classic Zipf).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BipartiteConfig {
    fn default() -> Self {
        Self {
            num_users: 10_000,
            num_items: 5_000,
            num_interactions: 100_000,
            skew: 0.8,
            seed: 42,
        }
    }
}

/// Generates a symmetrized bipartite interaction graph.
pub fn bipartite_interaction(cfg: &BipartiteConfig) -> Graph {
    assert!(
        cfg.num_users >= 1 && cfg.num_items >= 1,
        "both sides must be non-empty"
    );
    let n = cfg.num_users + cfg.num_items;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let users = CumSampler::new((0..cfg.num_users).map(|i| 1.0 / ((i + 1) as f64).powf(cfg.skew)));
    let items = CumSampler::new((0..cfg.num_items).map(|i| 1.0 / ((i + 1) as f64).powf(cfg.skew)));
    let mut b = GraphBuilder::with_capacity(n, cfg.num_interactions);
    for _ in 0..cfg.num_interactions {
        let u = users.sample(&mut rng) as VertexId;
        let i = (cfg.num_users + items.sample(&mut rng)) as VertexId;
        b.add_edge(u, i);
    }
    // Parallel edges are kept deliberately: repeated user–item interactions
    // are real transaction multiplicity, and the dense aligraph regime
    // saturates the unique-pair space at reproduction scale.
    b.symmetrize(true);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_bipartite() {
        let cfg = BipartiteConfig {
            num_users: 100,
            num_items: 50,
            num_interactions: 2_000,
            ..Default::default()
        };
        let g = bipartite_interaction(&cfg);
        // Users only connect to items and vice versa.
        for u in 0..100u32 {
            assert!(g.neighbors(u).iter().all(|&x| x >= 100));
        }
        for i in 100..150u32 {
            assert!(g.neighbors(i).iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn dense_config_yields_high_average_degree() {
        let cfg = BipartiteConfig {
            num_users: 500,
            num_items: 250,
            num_interactions: 60_000,
            skew: 0.4,
            ..Default::default()
        };
        let g = bipartite_interaction(&cfg);
        assert!(g.avg_degree() > 50.0, "avg degree {}", g.avg_degree());
    }

    #[test]
    fn skew_concentrates_popular_items() {
        let cfg = BipartiteConfig {
            num_users: 1_000,
            num_items: 1_000,
            num_interactions: 20_000,
            skew: 1.0,
            ..Default::default()
        };
        let g = bipartite_interaction(&cfg);
        // Item 0 (most popular) should far exceed the median item degree.
        let first = g.degree(1_000);
        let mut degs: Vec<u32> = (1_000..2_000).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let median = degs[500];
        assert!(first > 5 * median.max(1), "first {first}, median {median}");
    }
}
