//! Small deterministic topologies used throughout the test suites.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::VertexId;

/// Path 0-1-2-...-(n-1).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.symmetrize(true);
    b.build()
}

/// Cycle over n vertices (n >= 3).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.add_edge((n - 1) as VertexId, 0);
    b.symmetrize(true);
    b.build()
}

/// Star: hub 0 connected to spokes 1..n-1. The canonical high-degree vertex.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 vertices");
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n {
        b.add_edge(0, v as VertexId);
    }
    b.symmetrize(true);
    b.build()
}

/// Complete graph K_n.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.symmetrize(true);
    b.build()
}

/// Two cliques of size `k` joined by a single bridge edge between vertex
/// `k-1` and vertex `k`. Classic LP must discover exactly two communities.
pub fn two_cliques_bridge(k: usize) -> Graph {
    assert!(k >= 2, "cliques need at least 2 vertices");
    let n = 2 * k;
    let mut b = GraphBuilder::with_capacity(n, k * (k - 1) + 1);
    for base in [0, k] {
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_edge((base + u) as VertexId, (base + v) as VertexId);
            }
        }
    }
    b.add_edge((k - 1) as VertexId, k as VertexId);
    b.symmetrize(true);
    b.build()
}

/// Connected caveman graph: `num_caves` cliques of size `cave_size`, with one
/// edge of each clique rewired to the next clique, forming a ring of caves.
/// LP should recover (approximately) one community per cave.
pub fn caveman(num_caves: usize, cave_size: usize) -> Graph {
    assert!(
        num_caves >= 2 && cave_size >= 3,
        "need >=2 caves of size >=3"
    );
    let n = num_caves * cave_size;
    let mut b = GraphBuilder::with_capacity(n, num_caves * cave_size * cave_size / 2);
    for c in 0..num_caves {
        let base = c * cave_size;
        for u in 0..cave_size {
            for v in (u + 1)..cave_size {
                // Rewire the (0,1) edge of each cave to bridge to the next cave.
                if u == 0 && v == 1 {
                    let next = ((c + 1) % num_caves) * cave_size;
                    b.add_edge((base + u) as VertexId, next as VertexId);
                } else {
                    b.add_edge((base + u) as VertexId, (base + v) as VertexId);
                }
            }
        }
    }
    b.symmetrize(true).dedup(true);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_degrees() {
        let g = path(5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn cycle_every_degree_two() {
        let g = cycle(7);
        assert!((0..7).all(|v| g.degree(v) == 2));
        assert_eq!(g.num_edges(), 14);
    }

    #[test]
    fn star_hub_degree() {
        let g = star(33);
        assert_eq!(g.degree(0), 32);
        assert!((1..33).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_degrees() {
        let g = complete(6);
        assert!((0..6).all(|v| g.degree(v) == 5));
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn two_cliques_structure() {
        let g = two_cliques_bridge(4);
        assert_eq!(g.num_vertices(), 8);
        // bridge endpoints have degree k-1+1
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.degree(4), 4);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn caveman_is_connected_ring() {
        let g = caveman(4, 5);
        assert_eq!(g.num_vertices(), 20);
        // BFS reaches everything
        let mut seen = [false; 20];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
