//! Road-network generator: a partial 2-D lattice.
//!
//! Substitutes for roadNet (Table 2: average degree 2.8, near-constant
//! degrees). Road networks are the pathological case for one-warp-one-vertex
//! scheduling — with ~3 neighbors, 29 of 32 lanes idle — which is why the
//! warp optimization gains 13.2x there (Table 3). A grid where each vertex
//! keeps its right/down edge with probability `keep` reproduces the constant
//! low-degree profile: expected average degree is `4 * keep`.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`road_network`].
#[derive(Clone, Debug)]
pub struct RoadConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Probability each lattice edge is kept. Average degree = 4 * keep.
    pub keep: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        Self {
            width: 1000,
            height: 1000,
            keep: 0.7,
            seed: 42,
        }
    }
}

/// Generates a symmetrized partial grid.
pub fn road_network(cfg: &RoadConfig) -> Graph {
    assert!(
        cfg.width >= 2 && cfg.height >= 2,
        "grid must be at least 2x2"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.keep),
        "keep must be a probability"
    );
    let n = cfg.width * cfg.height;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::with_capacity(n, (2.0 * n as f64 * cfg.keep) as usize);
    let at = |x: usize, y: usize| (y * cfg.width + x) as VertexId;
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width && rng.gen::<f64>() < cfg.keep {
                b.add_edge(at(x, y), at(x + 1, y));
            }
            if y + 1 < cfg.height && rng.gen::<f64>() < cfg.keep {
                b.add_edge(at(x, y), at(x, y + 1));
            }
        }
    }
    b.symmetrize(true);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_matches_keep() {
        let cfg = RoadConfig {
            width: 200,
            height: 200,
            keep: 0.7,
            seed: 1,
        };
        let g = road_network(&cfg);
        let avg = g.avg_degree();
        assert!((avg - 2.8).abs() < 0.15, "avg degree {avg}, expected ~2.8");
    }

    #[test]
    fn max_degree_bounded_by_four() {
        let g = road_network(&RoadConfig::default());
        let max = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .max()
            .unwrap();
        assert!(max <= 4);
    }

    #[test]
    fn deterministic() {
        let cfg = RoadConfig {
            width: 50,
            height: 50,
            ..Default::default()
        };
        let g1 = road_network(&cfg);
        let g2 = road_network(&cfg);
        assert_eq!(g1.incoming().targets(), g2.incoming().targets());
    }
}
