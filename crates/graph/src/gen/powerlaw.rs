//! Community-structured power-law generator (Chung–Lu with planted
//! communities).
//!
//! Substitutes for the social-network datasets (dblp, youtube, ljournal,
//! twitter): power-law degree distribution with exponent ~2–3 plus planted
//! community structure so that label propagation converges the way it does
//! on real social graphs — which is exactly the property (§4.1) that makes
//! the CMS+HT shared-memory design effective ("two neighbors of a vertex
//! often share the same label").

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`community_powerlaw`].
#[derive(Clone, Debug)]
pub struct CommunityPowerLawConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target average degree counted as |E|/|V| with |E| symmetrized-directed
    /// (the convention of Table 2).
    pub avg_degree: f64,
    /// Degree power-law exponent γ (weight of vertex i ∝ (i+1)^(-1/(γ-1))).
    /// Social networks sit around 2.1–2.6.
    pub gamma: f64,
    /// Number of planted communities. Community sizes follow a Zipf
    /// distribution, like real community-size distributions.
    pub num_communities: usize,
    /// Probability that an edge endpoint ignores community structure and is
    /// drawn globally (the "mixing" parameter; lower = crisper communities).
    pub mixing: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CommunityPowerLawConfig {
    fn default() -> Self {
        Self {
            num_vertices: 10_000,
            avg_degree: 8.0,
            gamma: 2.3,
            num_communities: 100,
            mixing: 0.1,
            seed: 42,
        }
    }
}

/// Cumulative-weight sampler: O(log n) weighted draws over a fixed weight
/// vector via binary search on the prefix-sum array.
pub(crate) struct CumSampler {
    prefix: Vec<f64>,
}

impl CumSampler {
    pub(crate) fn new(weights: impl Iterator<Item = f64>) -> Self {
        let mut prefix = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            prefix.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        Self { prefix }
    }

    pub(crate) fn total(&self) -> f64 {
        *self.prefix.last().unwrap()
    }

    pub(crate) fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen::<f64>() * self.total();
        self.prefix
            .partition_point(|&p| p < x)
            .min(self.prefix.len() - 1)
    }
}

/// Generates a symmetrized community power-law graph.
///
/// Vertices are assigned to communities with Zipf-distributed sizes; each
/// undirected edge draws its source degree-weighted globally, and its
/// destination degree-weighted within the source's community with
/// probability `1 - mixing` (globally otherwise).
pub fn community_powerlaw(cfg: &CommunityPowerLawConfig) -> Graph {
    community_powerlaw_with_truth(cfg).0
}

/// Like [`community_powerlaw`], additionally returning the planted
/// community of every vertex — the ground truth for detection-quality
/// measurements (NMI/purity against LP's output).
pub fn community_powerlaw_with_truth(cfg: &CommunityPowerLawConfig) -> (Graph, Vec<u32>) {
    assert!(cfg.num_vertices >= 2, "need at least 2 vertices");
    assert!(cfg.gamma > 1.0, "power-law exponent must exceed 1");
    assert!((0.0..=1.0).contains(&cfg.mixing), "mixing must be in [0,1]");
    let n = cfg.num_vertices;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Chung–Lu weights: w_i ∝ (i+1)^(-1/(γ-1)), shuffled so vertex id does
    // not correlate with degree.
    let expo = -1.0 / (cfg.gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(expo)).collect();
    // Fisher–Yates shuffle of weights.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }

    // Community assignment: Zipf community sizes via weighted community draw.
    let ncomm = cfg.num_communities.clamp(1, n);
    let comm_sampler = CumSampler::new((0..ncomm).map(|c| 1.0 / (c + 1) as f64));
    let community: Vec<u32> = (0..n)
        .map(|_| comm_sampler.sample(&mut rng) as u32)
        .collect();

    // Per-community member lists with their own cumulative samplers.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); ncomm];
    for (v, &c) in community.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }
    let comm_samplers: Vec<Option<CumSampler>> = members
        .iter()
        .map(|ms| {
            (!ms.is_empty()).then(|| CumSampler::new(ms.iter().map(|&v| weights[v as usize])))
        })
        .collect();
    let global = CumSampler::new(weights.iter().copied());

    // Undirected pair count: |E| = avg_degree * n counts both directions.
    // Degree-weighted sampling repeatedly hits hubs, so duplicates are
    // common; resample until the *unique* pair count reaches the target
    // (bounded rounds — heavy skew can make the target unreachable).
    let target_pairs = ((cfg.avg_degree * n as f64) / 2.0).round() as usize;
    let mut keys: Vec<u64> = Vec::with_capacity(target_pairs + target_pairs / 4);
    for _ in 0..6 {
        let deficit = target_pairs.saturating_sub(keys.len());
        if deficit == 0 {
            break;
        }
        // Oversample slightly; later rounds shrink geometrically.
        for _ in 0..(deficit + deficit / 8 + 16) {
            let src = global.sample(&mut rng) as VertexId;
            let dst = if rng.gen::<f64>() < cfg.mixing {
                global.sample(&mut rng) as VertexId
            } else {
                let c = community[src as usize] as usize;
                match &comm_samplers[c] {
                    Some(s) => members[c][s.sample(&mut rng)],
                    None => global.sample(&mut rng) as VertexId,
                }
            };
            if src != dst {
                let (a, z) = if src < dst { (src, dst) } else { (dst, src) };
                keys.push(u64::from(a) << 32 | u64::from(z));
            }
        }
        keys.sort_unstable();
        keys.dedup();
    }
    // Truncate the overshoot *after shuffling*: the keys are sorted (for
    // dedup), so truncating in place would drop only the highest-id edges
    // and bias the degree distribution against high-id vertices.
    if keys.len() > target_pairs {
        for i in (1..keys.len()).rev() {
            let j = rng.gen_range(0..=i);
            keys.swap(i, j);
        }
        keys.truncate(target_pairs);
    }
    let mut b = GraphBuilder::with_capacity(n, keys.len());
    for key in keys {
        b.add_edge((key >> 32) as VertexId, key as VertexId);
    }
    b.symmetrize(true);
    (b.build(), community)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = CommunityPowerLawConfig {
            num_vertices: 500,
            avg_degree: 6.0,
            ..Default::default()
        };
        let g1 = community_powerlaw(&cfg);
        let g2 = community_powerlaw(&cfg);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.incoming().targets(), g2.incoming().targets());
    }

    #[test]
    fn different_seeds_differ() {
        let base = CommunityPowerLawConfig {
            num_vertices: 500,
            avg_degree: 6.0,
            ..Default::default()
        };
        let other = CommunityPowerLawConfig {
            seed: 7,
            ..base.clone()
        };
        let g1 = community_powerlaw(&base);
        let g2 = community_powerlaw(&other);
        assert_ne!(g1.incoming().targets(), g2.incoming().targets());
    }

    #[test]
    fn hits_target_density_approximately() {
        let cfg = CommunityPowerLawConfig {
            num_vertices: 5_000,
            avg_degree: 10.0,
            ..Default::default()
        };
        let g = community_powerlaw(&cfg);
        // Dedup and self-loop removal lose a few edges; expect within 25%.
        let avg = g.avg_degree();
        assert!(avg > 7.0 && avg < 10.5, "avg degree {avg}");
    }

    #[test]
    fn degrees_are_skewed() {
        let cfg = CommunityPowerLawConfig {
            num_vertices: 5_000,
            avg_degree: 10.0,
            gamma: 2.2,
            ..Default::default()
        };
        let g = community_powerlaw(&cfg);
        let max_deg = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .max()
            .unwrap();
        assert!(
            f64::from(max_deg) > 10.0 * g.avg_degree(),
            "power-law graphs should have hubs; max {max_deg}, avg {}",
            g.avg_degree()
        );
    }

    #[test]
    fn truth_matches_config() {
        let cfg = CommunityPowerLawConfig {
            num_vertices: 800,
            num_communities: 10,
            ..Default::default()
        };
        let (g, truth) = community_powerlaw_with_truth(&cfg);
        assert_eq!(truth.len(), g.num_vertices());
        assert!(truth.iter().all(|&c| c < 10));
        // Low mixing means most edges stay inside their community.
        let intra = (0..g.num_vertices() as VertexId)
            .flat_map(|v| g.neighbors(v).iter().map(move |&u| (v, u)))
            .filter(|&(v, u)| truth[v as usize] == truth[u as usize])
            .count();
        assert!(
            intra as f64 > 0.6 * g.num_edges() as f64,
            "{intra} intra of {}",
            g.num_edges()
        );
    }

    #[test]
    fn cum_sampler_respects_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = CumSampler::new([1.0, 0.0, 9.0].into_iter());
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 8 * counts[0]);
    }
}
