//! R-MAT (recursive matrix) generator.
//!
//! Substitutes for the web graphs (uk-2002, wiki-en): R-MAT with the
//! classic (0.57, 0.19, 0.19, 0.05) quadrant probabilities produces the
//! heavier-tailed, locally clustered degree distributions typical of web
//! crawls.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`rmat`].
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Number of undirected pairs to sample (before symmetrization/dedup).
    pub num_edges: usize,
    /// Quadrant probabilities (a, b, c); d = 1 - a - b - c.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        Self {
            scale: 14,
            num_edges: 1 << 17,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 42,
        }
    }
}

/// Generates a symmetrized R-MAT graph with `2^scale` vertices.
pub fn rmat(cfg: &RmatConfig) -> Graph {
    assert!(cfg.scale >= 1 && cfg.scale <= 31, "scale must be in 1..=31");
    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    assert!(
        cfg.a >= 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && d >= -1e-9,
        "quadrant probabilities must be non-negative and sum to <= 1"
    );
    let n = 1usize << cfg.scale;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::with_capacity(n, cfg.num_edges);
    for _ in 0..cfg.num_edges {
        let (mut src, mut dst) = (0usize, 0usize);
        for _ in 0..cfg.scale {
            let r: f64 = rng.gen();
            let (sbit, dbit) = if r < cfg.a {
                (0, 0)
            } else if r < cfg.a + cfg.b {
                (0, 1)
            } else if r < cfg.a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            src = (src << 1) | sbit;
            dst = (dst << 1) | dbit;
        }
        if src != dst {
            b.add_edge(src as VertexId, dst as VertexId);
        }
    }
    b.symmetrize(true).dedup(true);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(&RmatConfig {
            scale: 10,
            num_edges: 5_000,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 1024);
    }

    #[test]
    fn skewed_quadrants_make_hubs() {
        let g = rmat(&RmatConfig {
            scale: 12,
            num_edges: 40_000,
            ..Default::default()
        });
        let max = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .max()
            .unwrap();
        assert!(f64::from(max) > 20.0 * g.avg_degree(), "max {max}");
    }

    #[test]
    fn deterministic() {
        let cfg = RmatConfig {
            scale: 10,
            num_edges: 3_000,
            ..Default::default()
        };
        assert_eq!(
            rmat(&cfg).incoming().targets(),
            rmat(&cfg).incoming().targets()
        );
    }
}
