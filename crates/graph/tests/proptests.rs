//! Property-based invariants of the graph substrate.

use glp_graph::{Csr, Graph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// Arbitrary edge list over up to 64 vertices.
fn edges(max_v: u32) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..200)
}

proptest! {
    /// Any edge list builds a structurally valid CSR: offsets monotone,
    /// every edge accounted for, neighbors sorted.
    #[test]
    fn builder_produces_wellformed_csr(es in edges(64)) {
        let mut b = GraphBuilder::new(64);
        let self_loops = es.iter().filter(|(s, d)| s == d).count();
        for &(s, d) in &es {
            b.add_edge(s, d);
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges() as usize, es.len() - self_loops);
        let mut total = 0u64;
        for v in 0..64u32 {
            let nbrs = g.neighbors(v);
            total += nbrs.len() as u64;
            prop_assert!(nbrs.windows(2).all(|w| w[0] <= w[1]), "unsorted neighbors");
        }
        prop_assert_eq!(total, g.num_edges());
    }

    /// Symmetrize gives every stored edge a reverse twin.
    #[test]
    fn symmetrize_is_symmetric(es in edges(48)) {
        let mut b = GraphBuilder::new(48);
        for &(s, d) in &es {
            b.add_edge(s, d);
        }
        b.symmetrize(true).dedup(true);
        let g = b.build();
        for v in 0..48u32 {
            for &u in g.neighbors(v) {
                prop_assert!(
                    g.neighbors(u).binary_search(&v).is_ok(),
                    "edge {v}->{u} missing reverse"
                );
            }
        }
    }

    /// Transposition is an involution on well-formed CSRs.
    #[test]
    fn transpose_involution(es in edges(48)) {
        let mut b = GraphBuilder::new(48);
        for &(s, d) in &es {
            b.add_edge(s, d);
        }
        let g = b.build();
        let t: &Csr = g.incoming();
        let back = t.transpose().transpose();
        prop_assert_eq!(back.offsets(), t.offsets());
        prop_assert_eq!(back.targets(), t.targets());
    }

    /// Dedup with weights preserves total edge weight exactly (weights are
    /// small integers so f32 summation is exact).
    #[test]
    fn dedup_preserves_total_weight(es in edges(32)) {
        let mut b = GraphBuilder::new(32);
        let mut expected = 0.0f64;
        for &(s, d) in &es {
            if s != d {
                b.add_weighted_edge(s, d, 2.0);
                expected += 2.0;
            }
        }
        if es.iter().all(|(s, d)| s == d) {
            return Ok(());
        }
        b.dedup(true);
        let g = b.build();
        let total: f64 = (0..32u32)
            .filter_map(|v| g.incoming().neighbor_weights(v))
            .flat_map(|ws| ws.iter().map(|&w| f64::from(w)))
            .sum();
        prop_assert_eq!(total, expected);
    }

    /// Even partitioning covers all edges exactly once, for any shape.
    #[test]
    fn partition_even_covers(es in edges(64), k in 1usize..9) {
        let mut b = GraphBuilder::new(64);
        for &(s, d) in &es {
            b.add_edge(s, d);
        }
        let g: Graph = b.build();
        let parts = glp_graph::partition::partition_even(&g, k);
        prop_assert_eq!(parts.len(), k);
        let covered: u64 = parts.iter().map(|r| r.num_edges()).sum();
        prop_assert_eq!(covered, g.num_edges());
        let vertices: usize = parts.iter().map(|r| r.num_vertices()).sum();
        prop_assert_eq!(vertices, 64);
    }
}
