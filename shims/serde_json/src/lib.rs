//! Offline stand-in for `serde_json`.
//!
//! Provides the output-side subset the workspace uses: a [`Value`] tree,
//! the [`json!`] constructor macro, and [`to_string`] /
//! [`to_string_pretty`] serializers. Object key order is insertion order,
//! so emitted documents are deterministic.
//!
//! Interpolated expressions in `json!` go through `Into<Value>`; nested
//! maps/arrays must be written as nested `json!` calls (the workspace's
//! call sites all interpolate plain values).

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (serialized without a decimal point).
    I64(i64),
    /// Unsigned integers beyond `i64::MAX`.
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere) — handy in tests.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}
impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::F64(f64::from(x))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self { Value::I64(x as i64) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self {
                let wide = x as u64;
                if wide <= i64::MAX as u64 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(wide)
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Constructs a [`Value`]. Supports `null`, object literals with string
/// keys, array literals, and any `Into<Value>` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Serialization never fails for [`Value`] trees; the `Result` shape
/// matches the real crate so call sites keep their `.expect(..)`.
pub type Error = std::convert::Infallible;

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Pretty serialization: two-space indent, like the real crate.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null"); // JSON has no NaN/inf
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_shape() {
        let doc = json!({
            "name": "glp",
            "n": 3u32,
            "ratio": 0.5f64,
            "tags": vec!["a", "b"],
            "none": Option::<u32>::None,
        });
        let s = to_string(&doc).unwrap();
        assert_eq!(
            s,
            r#"{"name":"glp","n":3,"ratio":0.5,"tags":["a","b"],"none":null}"#
        );
    }

    #[test]
    fn pretty_indents_and_escapes() {
        let doc = json!({ "k\n": "v\"q" });
        let s = to_string_pretty(&doc).unwrap();
        assert!(s.contains("\n  "), "{s}");
        assert!(s.contains("\\n"), "{s}");
        assert!(s.contains("\\\"q"), "{s}");
    }

    #[test]
    fn key_order_is_insertion_order() {
        let doc = json!({ "z": 1u32, "a": 2u32 });
        let s = to_string(&doc).unwrap();
        assert!(s.find("\"z\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn get_navigates_objects() {
        let doc = json!({ "a": 7u32 });
        assert_eq!(doc.get("a"), Some(&Value::I64(7)));
        assert_eq!(doc.get("b"), None);
    }
}
