//! Offline stand-in for `serde_json`.
//!
//! Provides the subset the workspace uses: a [`Value`] tree, the [`json!`]
//! constructor macro, [`to_string`] / [`to_string_pretty`] serializers,
//! and a [`from_str`] parser with the real crate's `value["key"]` /
//! `as_f64()`-style accessors. Object key order is insertion order, so
//! emitted documents are deterministic.
//!
//! Interpolated expressions in `json!` go through `Into<Value>`; nested
//! maps/arrays must be written as nested `json!` calls (the workspace's
//! call sites all interpolate plain values).

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (serialized without a decimal point).
    I64(i64),
    /// Unsigned integers beyond `i64::MAX`.
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere) — handy in tests.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: any number variant widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::U64(x) => Some(x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// `value["key"]` on objects, like the real crate: missing keys and
/// non-objects yield [`Value::Null`] instead of panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` on arrays; out of range or non-arrays yield [`Value::Null`].
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}
impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::F64(f64::from(x))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self { Value::I64(x as i64) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self {
                let wide = x as u64;
                if wide <= i64::MAX as u64 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(wide)
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Constructs a [`Value`]. Supports `null`, object literals with string
/// keys, array literals, and any `Into<Value>` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Serialization never fails for [`Value`] trees; the `Result` shape
/// matches the real crate so call sites keep their `.expect(..)`.
pub type Error = std::convert::Infallible;

/// Parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] tree. Accepts exactly what the
/// serializers above emit (strict JSON; no comments or trailing commas)
/// and rejects trailing garbage.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up: the serializer
                            // above never emits them for valid UTF-8.
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through verbatim; the input is a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Pretty serialization: two-space indent, like the real crate.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null"); // JSON has no NaN/inf
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_shape() {
        let doc = json!({
            "name": "glp",
            "n": 3u32,
            "ratio": 0.5f64,
            "tags": vec!["a", "b"],
            "none": Option::<u32>::None,
        });
        let s = to_string(&doc).unwrap();
        assert_eq!(
            s,
            r#"{"name":"glp","n":3,"ratio":0.5,"tags":["a","b"],"none":null}"#
        );
    }

    #[test]
    fn pretty_indents_and_escapes() {
        let doc = json!({ "k\n": "v\"q" });
        let s = to_string_pretty(&doc).unwrap();
        assert!(s.contains("\n  "), "{s}");
        assert!(s.contains("\\n"), "{s}");
        assert!(s.contains("\\\"q"), "{s}");
    }

    #[test]
    fn key_order_is_insertion_order() {
        let doc = json!({ "z": 1u32, "a": 2u32 });
        let s = to_string(&doc).unwrap();
        assert!(s.find("\"z\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn get_navigates_objects() {
        let doc = json!({ "a": 7u32 });
        assert_eq!(doc.get("a"), Some(&Value::I64(7)));
        assert_eq!(doc.get("b"), None);
    }

    #[test]
    fn parse_roundtrips_serializer_output() {
        let doc = json!({
            "name": "glp \"quoted\"\n",
            "n": 3u32,
            "neg": -5i64,
            "big": u64::MAX,
            "ratio": 0.5f64,
            "exp": 1.5e-3f64,
            "tags": vec!["a", "b"],
            "none": Option::<u32>::None,
            "ok": true,
        });
        for s in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            assert_eq!(from_str(&s).unwrap(), doc, "{s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn index_and_accessors_navigate() {
        let doc = from_str(r#"{"a":{"b":[1,2.5,"s",true]}}"#).unwrap();
        assert_eq!(doc["a"]["b"][0].as_u64(), Some(1));
        assert_eq!(doc["a"]["b"][1].as_f64(), Some(2.5));
        assert_eq!(doc["a"]["b"][2].as_str(), Some("s"));
        assert_eq!(doc["a"]["b"][3].as_bool(), Some(true));
        assert_eq!(doc["missing"], Value::Null);
        assert_eq!(doc["a"]["b"][9], Value::Null);
    }
}
