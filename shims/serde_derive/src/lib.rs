//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker (nothing serializes through serde's data model offline —
//! structured output goes through the `serde_json` shim's `Value`). The
//! derives therefore emit empty impls of the shim's marker traits, using
//! only the built-in `proc_macro` API — no `syn`/`quote`.

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
use proc_macro::{TokenStream, TokenTree};

/// Finds the derived type's name and emits `impl <trait> for <name> {}`.
/// Generic types get no impl (none exist in this workspace); if one
/// appears, the compile error at the use site will point here.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut iter = input.into_iter();
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let Some(name) = name else {
        return TokenStream::new();
    };
    if let Some(TokenTree::Punct(p)) = iter.next() {
        if p.as_char() == '<' {
            return TokenStream::new(); // generic type: skip the impl
        }
    }
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
