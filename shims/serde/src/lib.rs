//! Offline stand-in for `serde`.
//!
//! [`Serialize`] and [`Deserialize`] are marker traits here: the workspace
//! derives them on plain-old-data config/counter structs but never drives
//! serde's data model (JSON output goes through the `serde_json` shim's
//! [`Value`](../serde_json/enum.Value.html) type directly). The derive
//! macros are re-exported from the `serde_derive` shim, mirroring the real
//! crate's `derive` feature.

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type opted into serialization support.
pub trait Serialize {}

/// Marker: the type opted into deserialization support.
pub trait Deserialize {}
