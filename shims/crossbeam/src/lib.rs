//! Offline stand-in for `crossbeam`.
//!
//! Provides [`channel`]: bounded MPMC channels with the crossbeam API
//! surface the serving layer uses (`bounded`, blocking/non-blocking send
//! and receive, receive with timeout, cloneable senders *and* receivers,
//! disconnection semantics). Implemented over `Mutex` + `Condvar` rather
//! than a lock-free ring — correctness and API fidelity matter here, peak
//! throughput does not (the serving loop batches, so channel ops are not
//! the hot path).

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        capacity: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded MPMC channel of the given capacity (≥ 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity >= 1, "bounded channel needs capacity >= 1");
        let shared = Arc::new(Shared {
            capacity,
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC, like crossbeam).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The message could not be delivered.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Outcome of [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// All senders are gone and the queue is drained.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Outcome of [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Blocks until there is room (or every receiver is dropped).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.shared.capacity {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking send.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or every sender is dropped and
        /// the queue drains).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .expect("channel poisoned");
                state = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order() {
            let (tx, rx) = bounded(8);
            for i in 0..8 {
                tx.send(i).unwrap();
            }
            for i in 0..8 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn try_send_full_and_drop_oldest_idiom() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            // Drop-oldest: pop one from a cloned receiver, retry.
            let helper = rx.clone();
            assert_eq!(helper.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn recv_after_senders_gone_drains_then_disconnects() {
            let (tx, rx) = bounded(4);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let handle = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(9).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
            handle.join().unwrap();
        }

        #[test]
        fn blocking_send_unblocks_on_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let handle = thread::spawn(move || tx.send(2));
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(handle.join().unwrap().is_ok());
        }

        #[test]
        fn mpmc_distributes_all_messages() {
            let (tx, rx) = bounded(16);
            let mut handles = Vec::new();
            for w in 0..4 {
                let rx = rx.clone();
                handles.push(thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    (w, got)
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<i32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap().1)
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}
