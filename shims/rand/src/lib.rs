//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`seq::SliceRandom::shuffle`] and [`rngs::StdRng`].
//!
//! Streams are deterministic per seed, as the workspace requires, but are
//! **not** bit-compatible with the real `rand` crate — nothing in the
//! workspace pins cross-crate bit equality, only self-consistency.

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
/// Core entropy source: 32- and 64-bit uniform words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer below `bound` via widening multiply (bias < 2^-64,
/// irrelevant at workspace scales).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let f = <$t as Standard>::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (`shuffle`).
    use super::RngCore;

    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    //! Ready-made generators.
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — small, fast, full-period; stands in for the real
    /// crate's `StdRng` where only deterministic shuffling is needed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
