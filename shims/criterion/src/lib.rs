//! Offline stand-in for `criterion`.
//!
//! Runs each registered benchmark for a short, fixed wall-clock budget and
//! prints mean time per iteration. No statistics, no HTML reports, no
//! baseline comparison — just enough to keep `cargo bench` compiling and
//! producing a sanity-check timing line per benchmark.

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the real crate's is a
/// compiler fence; the std hint is equivalent for our purposes).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one("", name, self.budget, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (the real crate tunes its sampling
    /// plan; the shim's budget is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.budget, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.0, self.budget, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`from_parameter` only).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        Self(p.to_string())
    }

    pub fn new(function: impl Display, p: impl Display) -> Self {
        Self(format!("{function}/{p}"))
    }
}

/// Passed to the benchmark closure; `iter` measures the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up once, then measure batches until the budget is spent.
        black_box(routine());
        let start = Instant::now();
        let mut batch = 1u64;
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += t.elapsed();
            self.iterations += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        budget,
        ..Default::default()
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.iterations == 0 {
        println!("bench {label}: routine never ran");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    println!(
        "bench {label}: {:.3} µs/iter ({} iters)",
        per_iter * 1e6,
        b.iterations
    );
}

/// Collects benchmark functions under a group name, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
