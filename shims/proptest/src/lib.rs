//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/`vec`/`any` strategies, `prop_map`,
//! and the `prop_assert*` macros. Cases are generated from a fixed
//! deterministic seed (derived from the test's name), so failures
//! reproduce exactly; there is **no shrinking** — a failing case panics
//! with its case index, and the inputs can be recovered by re-running
//! under a debugger or with an `eprintln` in the body.

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
/// Deterministic generator behind every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` via widening multiply.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike the real crate there is no value tree or
/// shrinking; `generate` draws one case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical full-domain strategy (the real crate's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitive types.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> { Any::default() }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any::default()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; full bit patterns would mostly
        // produce astronomical magnitudes and NaNs.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;

    fn arbitrary() -> Any<f64> {
        Any::default()
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`vec`).
    use super::{Strategy, TestRng};

    /// Element counts for [`vec`]: an exact size or a range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration. Only `cases` is consulted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Explicit failure value for property bodies (the real crate's
/// `TestCaseError`); the shim's `prop_assert*` macros panic instead, but
/// bodies may still `return Ok(())` / construct this directly.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// Derives the per-test RNG seed from the test's name, so each property
/// sees a distinct but reproducible stream.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests: each function runs `config.cases` times with
/// inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg); $($rest)* }
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            $(let $arg = $strat;)*
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)*
                // Bodies may `return Ok(())` early, like the real crate.
                let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest {}: case {} of {} rejected: {:?} (deterministic seed {})",
                        stringify!($name), case, config.cases, e,
                        $crate::seed_for(stringify!($name)),
                    ),
                    Err(panic) => {
                        eprintln!(
                            "proptest {}: failing case {} of {} (deterministic seed {})",
                            stringify!($name), case, config.cases,
                            $crate::seed_for(stringify!($name)),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Asserts inside a property (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! Everything a property-test file needs, like the real crate's
    //! prelude. `prop` aliases the crate root so `prop::collection::vec`
    //! resolves.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(t in (0u32..10, 5usize..8), c in 1u64..) {
            let (a, b) = t;
            prop_assert!(a < 10);
            prop_assert!((5..8).contains(&b));
            prop_assert!(c >= 1);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0u8..4, 1..20).prop_map(|v| v.len())) {
            prop_assert!((1..20).contains(&v));
        }

        #[test]
        fn any_bool_flips(x in any::<bool>(), y in any::<u32>()) {
            let _ = (x, y);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u32..100, prop::collection::vec(0u32..9, 3));
        let mut r1 = crate::TestRng::new(9);
        let mut r2 = crate::TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
