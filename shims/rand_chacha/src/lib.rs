//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream behind
//! the [`rand::RngCore`] / [`rand::SeedableRng`] traits.
//!
//! Deterministic per seed (the workspace's generators and tests rely on
//! that), but not bit-compatible with the real crate's word order — only
//! self-consistency is pinned anywhere in the workspace.

// Vendored stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]
use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// ChaCha8 keystream generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, block counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = w[i].wrapping_add(self.state[i]);
        }
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Expands the 64-bit seed into a 256-bit key with SplitMix64 (the
    /// same construction `rand_core` uses for `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut st = [0u32; 16];
        st[..4].copy_from_slice(&SIGMA);
        for k in 0..4 {
            let w = next();
            st[4 + 2 * k] = w as u32;
            st[5 + 2 * k] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        Self {
            state: st,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_are_well_spread() {
        // Crude uniformity check: bit population over many words sits near
        // half, and no word repeats in a short stream.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let words: Vec<u32> = (0..4096).map(|_| r.next_u32()).collect();
        let ones: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
        let total = 32 * words.len() as u64;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "bit fraction {frac}");
        let mut uniq = words.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > words.len() - 4, "too many repeated words");
    }

    #[test]
    fn blocks_advance() {
        // Crossing the 16-word block boundary keeps producing new data.
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
