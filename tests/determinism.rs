//! Determinism guarantees: results must not depend on harness thread
//! counts, repeated runs, or engine choice — only on the seeds.

use glp_suite::core::engine::GpuEngine;
use glp_suite::core::{ClassicLp, Engine, LpProgram, RunOptions, Slp};
use glp_suite::fraud::{TxConfig, TxStream};
use glp_suite::graph::datasets::table2;
use glp_suite::graph::gen::{community_powerlaw, CommunityPowerLawConfig};

#[test]
fn shard_count_does_not_change_results_or_modeled_time() {
    let g = community_powerlaw(&CommunityPowerLawConfig {
        num_vertices: 3_000,
        avg_degree: 10.0,
        ..Default::default()
    });
    let mut outcomes = Vec::new();
    for shards in [1, 2, 7] {
        let opts = RunOptions::default().with_shards(shards);
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 12);
        let report = engine.run(&g, &mut prog, &opts).unwrap();
        outcomes.push((prog.labels().to_vec(), report.modeled_seconds));
    }
    for w in outcomes.windows(2) {
        assert_eq!(w[0].0, w[1].0, "labels differ across shard counts");
        // Shard boundaries change warp packing and gather chunking
        // slightly (as grid partitioning does on real GPUs); modeled time
        // may drift at the ~1e-5 relative level but no more.
        let rel = (w[0].1 - w[1].1).abs() / w[0].1;
        assert!(
            rel < 1e-3,
            "modeled time differs across shard counts: {} vs {}",
            w[0].1,
            w[1].1
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let g = community_powerlaw(&CommunityPowerLawConfig {
        num_vertices: 2_000,
        avg_degree: 8.0,
        ..Default::default()
    });
    let run = || {
        let mut engine = GpuEngine::titan_v();
        let mut prog = Slp::new(g.num_vertices(), 0xABCD);
        let report = engine.run(&g, &mut prog, &RunOptions::default()).unwrap();
        (prog.labels().to_vec(), report.modeled_seconds)
    };
    let (l1, t1) = run();
    let (l2, t2) = run();
    assert_eq!(l1, l2);
    assert_eq!(t1, t2);
}

#[test]
fn generators_are_seed_stable() {
    for spec in table2() {
        let a = spec.generate_scaled(spec.default_scale * 64);
        let b = spec.generate_scaled(spec.default_scale * 64);
        assert_eq!(
            a.incoming().targets(),
            b.incoming().targets(),
            "{} generation is nondeterministic",
            spec.name
        );
    }
}

#[test]
fn transaction_stream_is_seed_stable() {
    let cfg = TxConfig {
        num_users: 2_000,
        num_items: 500,
        days: 20,
        tx_per_day: 800,
        ..Default::default()
    };
    let a = TxStream::generate(&cfg);
    let b = TxStream::generate(&cfg);
    assert_eq!(a.transactions, b.transactions);
    assert_eq!(a.blacklist, b.blacklist);
}
