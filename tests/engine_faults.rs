//! Device-fault acceptance suite (feature `fault-injection` only).
//!
//! Exercises the whole recovery path end to end: deterministic faults are
//! armed against specific simulated devices via `glp_gpusim::faults`, and
//! the assertions pin the contract that **no injected fault may change the
//! computed labels or the per-iteration traces** — recovery resumes, it
//! never silently recomputes differently.
//!
//! Scenarios, matching the issue's acceptance list:
//!   (a) a transient launch failure mid-run is retried on the same tier,
//!       resuming at the failed iteration (salvaged iterations > 0);
//!   (b) a persistent device loss walks the degradation ladder down to the
//!       host BSP engine;
//!   (c) losing one of four GPUs mid-run makes `MultiGpuEngine` finish on
//!       the three survivors;
//!   (d) with no fault armed, the injection hooks are inert: results and
//!       modeled cost are identical run to run.
//! Plus the observability side of recovery: a mid-run device loss must
//! leave `degrade` / `repartition` events in the span trace, parented to
//! the exact iteration the fault interrupted. And the property-based
//! sweep: arbitrary transient faults across all four GLP engines and both
//! frontier modes never perturb labels or the `changed` trace.
//!
//! Fixture builders (`reference`, `launches_per_iteration`) live in
//! `glp-test-support`, shared with the frontier and golden-trace suites.

#![cfg(feature = "fault-injection")]

use glp_suite::core::engine::{GpuEngine, HybridEngine, MultiGpuEngine, SequentialEngine};
use glp_suite::core::{ClassicLp, Engine, FrontierMode, LpProgram, ResilientEngine, RunOptions};
use glp_suite::gpusim::faults::{self, FaultKind};
use glp_suite::graph::gen::{caveman, two_cliques_bridge};
use glp_suite::trace::{Category, Kind, Tracer};
use glp_test_support::{launches_per_iteration, reference};
use proptest::prelude::*;
use std::time::Duration;

/// Acceptance (a): a transient launch failure is retried on the same tier
/// and the retry resumes at the failed iteration — completed iterations
/// are salvaged, and labels plus both traces are byte-identical to the
/// fault-free run.
#[test]
fn transient_launch_failure_resumes_at_failed_iteration() {
    let g = caveman(6, 8);
    let opts = RunOptions::default();
    let (want_labels, want_changed, want_active) = reference(&g, &opts);
    let per_iter = launches_per_iteration(&g, &opts);

    let gpu = GpuEngine::titan_v();
    let device = gpu.device().id();
    let mut engine = ResilientEngine::new(vec![Box::new(gpu), Box::new(SequentialEngine::bsp())])
        .with_backoff(Duration::ZERO, Duration::ZERO);
    // Fire inside iteration 1: iteration 0's barrier has committed, so the
    // retry must resume rather than restart.
    faults::inject_fault(device, FaultKind::LaunchFail, per_iter + 1);
    let served_before = faults::faults_served();

    let mut prog = ClassicLp::new(g.num_vertices());
    let report = engine.run(&g, &mut prog, &opts).expect("retry recovers");
    faults::clear_device(device);

    assert_eq!(
        faults::faults_served(),
        served_before + 1,
        "fault not fired"
    );
    let stats = engine.resilience();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.degradations, 0);
    assert!(stats.iterations_salvaged >= 1, "resume must not restart");
    assert_eq!(stats.tier, Some("GLP"));
    assert_eq!(prog.labels(), &want_labels[..]);
    assert_eq!(report.changed_per_iteration, want_changed);
    assert_eq!(report.active_per_iteration, want_active);
}

/// Acceptance (b): persistent device loss on the GPU tier (and then on the
/// hybrid tier) walks the ladder to the host BSP engine, which finishes
/// the run with byte-identical labels.
#[test]
fn persistent_device_loss_degrades_to_sequential() {
    let g = caveman(6, 8);
    let opts = RunOptions::default();
    let (want_labels, want_changed, want_active) = reference(&g, &opts);
    let per_iter = launches_per_iteration(&g, &opts);

    let gpu = GpuEngine::titan_v();
    let hybrid = HybridEngine::titan_v();
    let (gpu_dev, hybrid_dev) = (gpu.device().id(), hybrid.device().id());
    let mut engine = ResilientEngine::new(vec![
        Box::new(gpu),
        Box::new(hybrid),
        Box::new(SequentialEngine::bsp()),
    ])
    .with_backoff(Duration::ZERO, Duration::ZERO);
    // Lose the GPU after one completed iteration and the hybrid card on
    // its very first kernel: only the host tier can finish.
    faults::inject_fault(gpu_dev, FaultKind::DeviceLost, per_iter + 1);
    faults::inject_fault(hybrid_dev, FaultKind::DeviceLost, 0);

    let mut prog = ClassicLp::new(g.num_vertices());
    let report = engine.run(&g, &mut prog, &opts).expect("ladder recovers");
    faults::clear_device(gpu_dev);
    faults::clear_device(hybrid_dev);

    let stats = engine.resilience();
    assert_eq!(stats.degradations, 2, "GPU -> hybrid -> host");
    assert_eq!(stats.tier, Some("Sequential-BSP"));
    assert!(stats.iterations_salvaged >= 1);
    assert_eq!(stats.faults.len(), 2);
    assert_eq!(prog.labels(), &want_labels[..]);
    assert_eq!(report.changed_per_iteration, want_changed);
    assert_eq!(report.active_per_iteration, want_active);
}

/// Acceptance (c): losing one of four GPUs mid-run does not abort the
/// multi-GPU engine — it repartitions over the three survivors and
/// produces byte-identical labels.
#[test]
fn multi_gpu_survives_single_device_loss() {
    let g = caveman(6, 8);
    let opts = RunOptions::default();
    let (want_labels, want_changed, _) = reference(&g, &opts);

    let mut engine = MultiGpuEngine::titan_v(4);
    let victim = engine.gpus().device(1).id();
    // Let the victim serve a couple of kernels first so the loss lands
    // mid-run, between barriers.
    faults::inject_fault(victim, FaultKind::DeviceLost, 2);

    let mut prog = ClassicLp::new(g.num_vertices());
    let report = engine
        .run(&g, &mut prog, &opts)
        .expect("survivors finish the run");
    faults::clear_device(victim);

    assert!(engine.gpus().device(1).is_lost());
    assert_eq!(engine.gpus().survivors(), vec![0, 2, 3]);
    assert_eq!(prog.labels(), &want_labels[..]);
    assert_eq!(report.changed_per_iteration, want_changed);
}

/// Acceptance (d): the injection machinery is inert while nothing is armed
/// against a live device — repeated runs agree bit-for-bit in results
/// *and* modeled cost, and no fault is ever served. (The feature-off
/// build's purity is pinned by the default test suite compiling these
/// hooks out entirely.)
#[test]
fn unarmed_injectors_change_nothing() {
    let g = two_cliques_bridge(9);
    let opts = RunOptions::default();
    // A plan against an id no real device gets in this process must never
    // be consumed by anyone else's launches.
    faults::inject_fault(0xFAB0_BEEF, FaultKind::LaunchFail, 0);
    let served_before = faults::faults_served();

    let (labels_a, changed_a, _) = reference(&g, &opts);
    let mut prog = ClassicLp::new(g.num_vertices());
    let report_a = GpuEngine::titan_v().run(&g, &mut prog, &opts).unwrap();
    let mut prog_b = ClassicLp::new(g.num_vertices());
    let report_b = GpuEngine::titan_v().run(&g, &mut prog_b, &opts).unwrap();

    faults::clear_device(0xFAB0_BEEF);
    assert_eq!(faults::faults_served(), served_before, "stray fault served");
    assert_eq!(prog.labels(), prog_b.labels());
    assert_eq!(prog.labels(), &labels_a[..]);
    assert_eq!(report_a.changed_per_iteration, changed_a);
    assert_eq!(report_a.modeled_seconds, report_b.modeled_seconds);
    assert_eq!(report_a.snapshots_taken, 0, "no hook, no snapshot charge");
}

/// Recovery observability (ladder): a mid-run `DeviceLost` on the GPU
/// tier must leave a `degrade` instant in the trace whose parent is the
/// iteration span the fault interrupted — closed as an error span, so
/// the breadcrumb points at exactly where recovery kicked in.
#[test]
fn device_loss_emits_degrade_span_under_failed_iteration() {
    let g = caveman(6, 8);
    let base = RunOptions::default();
    let per_iter = launches_per_iteration(&g, &base);

    let gpu = GpuEngine::titan_v();
    let device = gpu.device().id();
    let mut engine = ResilientEngine::new(vec![Box::new(gpu), Box::new(SequentialEngine::bsp())])
        .with_backoff(Duration::ZERO, Duration::ZERO);
    // Persistent loss inside iteration 1: the ladder must degrade, and
    // the interrupted iteration is identifiable in the trace.
    faults::inject_fault(device, FaultKind::DeviceLost, per_iter + 1);

    let tracer = Tracer::new();
    let opts = base.with_tracer(tracer.clone());
    let mut prog = ClassicLp::new(g.num_vertices());
    engine.run(&g, &mut prog, &opts).expect("ladder recovers");
    faults::clear_device(device);
    assert_eq!(engine.resilience().degradations, 1);

    let trace = tracer.finish();
    trace.check_well_formed(1e-9).unwrap();
    let degrade = trace
        .named("degrade")
        .next()
        .expect("degradation must leave a trace event");
    assert_eq!(degrade.cat, Category::Resilience);
    assert_eq!(degrade.kind, Kind::Instant);
    let parent = trace
        .event(degrade.parent)
        .expect("degrade is parented to a recorded span");
    assert_eq!(
        parent.cat,
        Category::Iteration,
        "degrade must hang off the iteration the fault interrupted"
    );
    assert!(parent.err, "the interrupted iteration closes as an error");
    assert_eq!(parent.arg, Some(1), "the fault fired inside iteration 1");
    // The failed GPU run span is flagged too, and the host tier's clean
    // run follows it in the same trace.
    assert!(trace.named("GLP").any(|e| e.err));
    assert!(trace.named("Sequential-BSP").any(|e| !e.err));
}

/// Recovery observability (multi-GPU): losing a device mid-run must leave
/// a `repartition` instant inside the iteration that absorbed the loss,
/// alongside the dispatch attempt that died on the victim.
#[test]
fn multi_gpu_repartition_emits_resilience_span_mid_iteration() {
    let g = caveman(6, 8);
    let base = RunOptions::default();
    let (want_labels, _, _) = reference(&g, &base);

    let mut engine = MultiGpuEngine::titan_v(4);
    let victim = engine.gpus().device(1).id();
    // Launch 0 is the victim's pick_label; launch 1 is its first
    // propagate kernel, so the loss fires inside the dispatch span.
    faults::inject_fault(victim, FaultKind::DeviceLost, 1);

    let tracer = Tracer::new();
    let opts = base.with_tracer(tracer.clone());
    let mut prog = ClassicLp::new(g.num_vertices());
    engine.run(&g, &mut prog, &opts).expect("survivors finish");
    faults::clear_device(victim);
    assert_eq!(prog.labels(), &want_labels[..], "recovery stays exact");

    let trace = tracer.finish();
    trace.check_well_formed(1e-9).unwrap();
    let repartition = trace
        .named("repartition")
        .next()
        .expect("repartition must leave a trace event");
    assert_eq!(repartition.cat, Category::Resilience);
    assert_eq!(repartition.kind, Kind::Instant);
    let parent = trace
        .event(repartition.parent)
        .expect("repartition is parented to a recorded span");
    assert_eq!(
        parent.cat,
        Category::Iteration,
        "repartition lands inside the iteration that absorbed the loss"
    );
    // The dispatch attempt that died on the victim closes as an error
    // span under the same iteration; the run itself still succeeds.
    assert!(trace
        .named("dispatch")
        .any(|e| e.err && e.parent == parent.id));
    assert!(trace.named("GLP-multi").all(|e| !e.err));
}

/// The engines under the property sweep. Sequential has no device to
/// fault, so it rides along as a zero-injection control.
#[derive(Clone, Copy, Debug)]
enum Tier {
    Gpu,
    Hybrid,
    Multi,
    Sequential,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite property: an injected transient fault — a kernel stall,
    /// a rejected launch, a watchdog timeout, or a shard panic, at any
    /// launch index, on any GLP engine, in either frontier mode — leaves
    /// labels AND the `changed` trace byte-identical to the fault-free
    /// run.
    #[test]
    fn transient_faults_never_perturb_results(
        cliques in 3usize..6,
        size in 4usize..9,
        dense in any::<bool>(),
        kind_sel in 0usize..4,
        after in 0u32..32,
        tier_sel in 0usize..4,
    ) {
        let g = caveman(cliques, size);
        let mode = if dense { FrontierMode::Dense } else { FrontierMode::Auto };
        let opts = RunOptions::default().with_frontier(mode);
        let (want_labels, want_changed, want_active) = reference(&g, &opts);

        let tier = [Tier::Gpu, Tier::Hybrid, Tier::Multi, Tier::Sequential][tier_sel];
        // Index 3 is the stall injector: kernels get slow, not dead —
        // results must be untouched without any recovery machinery firing.
        let kind = [FaultKind::LaunchFail, FaultKind::Timeout, FaultKind::ShardPanic]
            .get(kind_sel)
            .copied();
        let (boxed, device): (Box<dyn Engine>, Option<u32>) = match tier {
            Tier::Gpu => {
                let e = GpuEngine::titan_v();
                let id = e.device().id();
                (Box::new(e), Some(id))
            }
            Tier::Hybrid => {
                let e = HybridEngine::titan_v();
                let id = e.device().id();
                (Box::new(e), Some(id))
            }
            Tier::Multi => {
                let e = MultiGpuEngine::titan_v(2);
                let id = e.gpus().device(0).id();
                (Box::new(e), Some(id))
            }
            Tier::Sequential => (Box::new(SequentialEngine::bsp()), None),
        };
        match (kind, device) {
            (Some(k), Some(id)) => faults::inject_fault(id, k, after),
            // Stalls are process-wide (no device id): a handful of slowed
            // launches, served by whichever engine launches next.
            (None, _) => faults::inject_kernel_stall(after.min(6), 100),
            (Some(_), None) => {} // sequential control: nothing to fault
        }

        let mut engine = ResilientEngine::new(vec![boxed])
            .with_max_retries(8)
            .with_backoff(Duration::ZERO, Duration::ZERO);
        let mut prog = ClassicLp::new(g.num_vertices());
        let outcome = engine.run(&g, &mut prog, &opts);
        if let Some(id) = device {
            faults::clear_device(id);
        }
        if kind.is_none() {
            faults::inject_kernel_stall(0, 0); // disarm leftover stalls
        }
        let report = outcome.expect("transient faults are recoverable");

        prop_assert_eq!(prog.labels(), &want_labels[..]);
        prop_assert_eq!(report.changed_per_iteration, want_changed);
        prop_assert_eq!(report.active_per_iteration, want_active);
    }
}
