//! End-to-end validation of the paper's §4.1 analysis on the live engine:
//! the CMS+HT kernel's global-memory fallback rate must stay within the
//! regime Theorem 1 describes, and shrinking the structures must increase
//! (never decrease) fallbacks.

use glp_suite::core::engine::{GpuEngine, MflStrategy};
use glp_suite::core::{ClassicLp, Engine, LpProgram, LpRunReport, RunOptions};
use glp_suite::graph::gen::{bipartite_interaction, BipartiteConfig};
use glp_suite::graph::Graph;
use glp_suite::sketch::theory;

/// A dense interaction graph: every item is a high-degree vertex, so the
/// CMS+HT kernel does all the work.
fn dense_graph() -> Graph {
    bipartite_interaction(&BipartiteConfig {
        num_users: 3_000,
        num_items: 60,
        num_interactions: 120_000,
        skew: 0.4,
        seed: 31,
    })
}

fn run_with_geometry(g: &Graph, ht_slots: usize, cms_depth: usize) -> LpRunReport {
    let opts = RunOptions {
        strategy: MflStrategy::SmemWarp,
        ht_slots,
        cms_depth,
        cms_width: 2048,
        ..Default::default()
    };
    let mut engine = GpuEngine::titan_v();
    let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 10);
    engine.run(g, &mut prog, &opts).unwrap()
}

#[test]
fn fallbacks_are_rare_with_paper_geometry() {
    let g = dense_graph();
    let report = run_with_geometry(&g, 1024, 4);
    assert!(report.smem_vertices > 0, "high-degree kernel must run");
    assert!(
        report.fallback_rate() < 0.05,
        "fallback rate {} should be small with h=1024, d=4",
        report.fallback_rate()
    );
}

#[test]
fn smaller_structures_mean_more_fallbacks() {
    let g = dense_graph();
    let roomy = run_with_geometry(&g, 1024, 4);
    let tight = run_with_geometry(&g, 16, 1);
    assert!(
        tight.fallback_rate() >= roomy.fallback_rate(),
        "tight {} vs roomy {}",
        tight.fallback_rate(),
        roomy.fallback_rate()
    );
}

#[test]
fn theorem1_bound_shape_matches_engine_behaviour() {
    // As communities form, m (distinct labels) collapses; the bound and
    // the engine agree that the fast path dominates. Spot-check the bound
    // itself in the regimes the engine sees after convergence.
    let converged = theory::theorem1_bound(8, 1024, 4);
    let early = theory::theorem1_bound(4_000, 1024, 4);
    assert!(converged < 0.51, "converged regime bound {converged}");
    assert!(early >= 1.0, "early iterations may need global memory");
}

#[test]
fn later_iterations_stop_falling_back() {
    // "As more iterations are executed, neighbors of a vertex often share
    // similar labels" (§4.1): even though synchronous LP oscillates label
    // *ownership* on bipartite graphs, each neighborhood's label set
    // collapses after a few rounds, so long runs amortize the
    // label-diverse first iterations away.
    let g = dense_graph();
    let mut engine = GpuEngine::titan_v();
    let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 30);
    let report = engine.run(&g, &mut prog, &RunOptions::default()).unwrap();
    assert!(
        report.fallback_rate() < 0.10,
        "rate {} across {} high-degree vertex-iterations",
        report.fallback_rate(),
        report.smem_vertices
    );
    assert!(report.iterations >= 25, "should run long");
    let _ = prog.labels();
}
