//! Frontier-vs-dense bit-identity, pinned across every program variant
//! and every GLP engine.
//!
//! The [`Engine`] contract says [`FrontierMode`] is a pure scheduling
//! knob: switching between [`FrontierMode::Dense`] and
//! [`FrontierMode::Auto`] must never change the labeling *or* the
//! per-iteration convergence trace. Sparse-activation programs (classic,
//! seeded, weighted, risk-weighted) exercise the real frontier machinery;
//! globally-coupled programs (LLP, SLP, capacity) pin the silent dense
//! fallback. Either way the assertion is the same: bits equal.
//!
//! Graph, engine, and program builders live in `glp-test-support` so this
//! suite, the fault suite, and the golden-trace suite sweep the same
//! fixture pool.

use glp_suite::core::engine::GpuEngine;
use glp_suite::core::{Engine, FrontierMode, RunOptions};
use glp_test_support::{engines, graphs, variants, ITERS};

#[test]
fn frontier_is_bit_identical_to_dense_for_every_variant_and_engine() {
    for (gname, g) in graphs() {
        for (ename, _) in engines(&g) {
            for (vname, _) in variants(&g) {
                let mut traces = Vec::new();
                for frontier in [FrontierMode::Dense, FrontierMode::Auto] {
                    let opts = RunOptions::default()
                        .with_max_iterations(ITERS)
                        .with_frontier(frontier);
                    let mut engine = engines(&g)
                        .into_iter()
                        .find(|(e, _)| *e == ename)
                        .unwrap()
                        .1;
                    let mut prog = variants(&g)
                        .into_iter()
                        .find(|(v, _)| *v == vname)
                        .unwrap()
                        .1;
                    let report = engine.run(&g, prog.as_mut(), &opts).unwrap();
                    traces.push((
                        prog.labels().to_vec(),
                        report.changed_per_iteration.clone(),
                        report.iterations,
                    ));
                }
                assert_eq!(
                    traces[0].0, traces[1].0,
                    "{vname} labels diverge on {ename}/{gname}"
                );
                assert_eq!(
                    traces[0].1, traces[1].1,
                    "{vname} convergence trace diverges on {ename}/{gname}"
                );
                assert_eq!(traces[0].2, traces[1].2);
            }
        }
    }
}

#[test]
fn sparse_variants_do_less_work_under_auto() {
    // The frontier must actually engage for sparse-activation programs:
    // summed active counts under Auto must undercut Dense once settling
    // starts. (Non-sparse programs fall back to dense and are exempt.)
    let g = glp_suite::graph::gen::caveman(12, 8);
    for (vname, sparse) in [("classic", true), ("seeded", true), ("llp", false)] {
        let total_active = |frontier: FrontierMode| -> u64 {
            let opts = RunOptions::default()
                .with_max_iterations(ITERS)
                .with_frontier(frontier);
            let mut prog = variants(&g)
                .into_iter()
                .find(|(v, _)| *v == vname)
                .unwrap()
                .1;
            let report = GpuEngine::titan_v().run(&g, prog.as_mut(), &opts).unwrap();
            report.active_per_iteration.iter().sum()
        };
        let dense = total_active(FrontierMode::Dense);
        let auto = total_active(FrontierMode::Auto);
        if sparse {
            assert!(
                auto < dense,
                "{vname}: frontier never engaged ({auto} vs {dense})"
            );
        } else {
            assert_eq!(auto, dense, "{vname}: dense fallback should be exact");
        }
    }
}
