//! Frontier-vs-dense bit-identity, pinned across every program variant
//! and every GLP engine.
//!
//! The [`Engine`] contract says [`FrontierMode`] is a pure scheduling
//! knob: switching between [`FrontierMode::Dense`] and
//! [`FrontierMode::Auto`] must never change the labeling *or* the
//! per-iteration convergence trace. Sparse-activation programs (classic,
//! seeded, weighted, risk-weighted) exercise the real frontier machinery;
//! globally-coupled programs (LLP, SLP, capacity) pin the silent dense
//! fallback. Either way the assertion is the same: bits equal.

use glp_suite::core::engine::{GpuEngine, HybridEngine, MultiGpuEngine, SequentialEngine};
use glp_suite::core::{
    CapacityLp, ClassicLp, Engine, FrontierMode, Llp, LpProgram, RiskWeightedLp, RunOptions,
    SeededLp, Slp, WeightedLp,
};
use glp_suite::gpusim::{Device, DeviceConfig};
use glp_suite::graph::gen::{caveman, community_powerlaw, CommunityPowerLawConfig};
use glp_suite::graph::Graph;
use std::sync::Arc;

const ITERS: u32 = 12;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("caveman", caveman(12, 8)),
        (
            "powerlaw",
            community_powerlaw(&CommunityPowerLawConfig {
                num_vertices: 1_500,
                avg_degree: 8.0,
                ..Default::default()
            }),
        ),
    ]
}

/// Fresh program instances per run (programs are stateful; each run needs
/// its own).
fn variants(g: &Graph) -> Vec<(&'static str, Box<dyn LpProgram>)> {
    let n = g.num_vertices();
    let seeds: Vec<u32> = (0..n as u32).step_by(53).collect();
    let risk_seeds: Vec<(u32, f32)> = seeds.iter().map(|&v| (v, 1.0 + (v % 5) as f32)).collect();
    // The generators emit unweighted graphs; give WeightedLp a synthetic
    // deterministic weight per incoming edge so it exercises real weights.
    let edge_weights: Arc<Vec<f32>> =
        Arc::new((0..g.num_edges()).map(|e| 0.5 + (e % 7) as f32).collect());
    vec![
        (
            "classic",
            Box::new(ClassicLp::with_max_iterations(n, ITERS)),
        ),
        ("llp", Box::new(Llp::with_max_iterations(n, 2.0, ITERS))),
        ("slp", Box::new(Slp::with_params(n, 5, 0.2, ITERS, 0x5EED))),
        (
            "seeded",
            Box::new(SeededLp::with_max_iterations(n, &seeds, ITERS)),
        ),
        (
            "weighted",
            Box::new(WeightedLp::new(n, edge_weights, ITERS).with_retention(0.3)),
        ),
        ("risk", Box::new(RiskWeightedLp::new(n, &risk_seeds, ITERS))),
        (
            "capacity",
            Box::new(CapacityLp::with_max_iterations(n, 64, ITERS)),
        ),
    ]
}

fn engines(g: &Graph) -> Vec<(&'static str, Box<dyn Engine>)> {
    // Hybrid on a device too small for the graph, so streaming engages.
    let tiny = (g.num_vertices() as u64) * 20 + g.size_bytes() / 3;
    vec![
        ("sequential", Box::new(SequentialEngine::new())),
        ("gpu", Box::new(GpuEngine::titan_v())),
        (
            "hybrid",
            Box::new(HybridEngine::new(Device::new(DeviceConfig::tiny(tiny)))),
        ),
        ("multi", Box::new(MultiGpuEngine::titan_v(2))),
    ]
}

#[test]
fn frontier_is_bit_identical_to_dense_for_every_variant_and_engine() {
    for (gname, g) in graphs() {
        for (ename, _) in engines(&g) {
            for (vname, _) in variants(&g) {
                let mut traces = Vec::new();
                for frontier in [FrontierMode::Dense, FrontierMode::Auto] {
                    let opts = RunOptions::default()
                        .with_max_iterations(ITERS)
                        .with_frontier(frontier);
                    let mut engine = engines(&g)
                        .into_iter()
                        .find(|(e, _)| *e == ename)
                        .unwrap()
                        .1;
                    let mut prog = variants(&g)
                        .into_iter()
                        .find(|(v, _)| *v == vname)
                        .unwrap()
                        .1;
                    let report = engine.run(&g, prog.as_mut(), &opts).unwrap();
                    traces.push((
                        prog.labels().to_vec(),
                        report.changed_per_iteration.clone(),
                        report.iterations,
                    ));
                }
                assert_eq!(
                    traces[0].0, traces[1].0,
                    "{vname} labels diverge on {ename}/{gname}"
                );
                assert_eq!(
                    traces[0].1, traces[1].1,
                    "{vname} convergence trace diverges on {ename}/{gname}"
                );
                assert_eq!(traces[0].2, traces[1].2);
            }
        }
    }
}

#[test]
fn sparse_variants_do_less_work_under_auto() {
    // The frontier must actually engage for sparse-activation programs:
    // summed active counts under Auto must undercut Dense once settling
    // starts. (Non-sparse programs fall back to dense and are exempt.)
    let g = caveman(12, 8);
    let n = g.num_vertices();
    for (vname, sparse) in [("classic", true), ("seeded", true), ("llp", false)] {
        let total_active = |frontier: FrontierMode| -> u64 {
            let opts = RunOptions::default()
                .with_max_iterations(ITERS)
                .with_frontier(frontier);
            let mut prog = variants(&g)
                .into_iter()
                .find(|(v, _)| *v == vname)
                .unwrap()
                .1;
            let report = GpuEngine::titan_v().run(&g, prog.as_mut(), &opts).unwrap();
            report.active_per_iteration.iter().sum()
        };
        let dense = total_active(FrontierMode::Dense);
        let auto = total_active(FrontierMode::Auto);
        if sparse {
            assert!(
                auto < dense,
                "{vname}: frontier never engaged ({auto} vs {dense})"
            );
        } else {
            assert_eq!(auto, dense, "{vname}: dense fallback should be exact");
        }
    }
    let _ = n;
}
