//! Behavioural integration tests of the LP variants — each variant's
//! *reason to exist*, demonstrated end-to-end on the GPU engine.

use glp_suite::core::community::{community_sizes, nmi};
use glp_suite::core::engine::GpuEngine;
use glp_suite::core::ordering::{avg_log_gap, llp_ordering};
use glp_suite::core::{
    CapacityLp, ClassicLp, Engine, Llp, LpProgram, RiskWeightedLp, RunOptions, Slp,
};
use glp_suite::graph::gen::{
    community_powerlaw_with_truth, two_cliques_bridge, CommunityPowerLawConfig,
};
use glp_suite::graph::{GraphBuilder, VertexId};

#[test]
fn classic_lp_recovers_planted_communities() {
    let (g, truth) = community_powerlaw_with_truth(&CommunityPowerLawConfig {
        num_vertices: 8_000,
        avg_degree: 10.0,
        num_communities: 64,
        mixing: 0.05,
        ..Default::default()
    });
    let mut prog = ClassicLp::new(g.num_vertices());
    GpuEngine::titan_v()
        .run(&g, &mut prog, &RunOptions::default())
        .unwrap();
    let score = nmi(prog.labels(), &truth);
    assert!(score > 0.9, "NMI {score}");
}

#[test]
fn llp_gamma_controls_resolution() {
    let (g, _) = community_powerlaw_with_truth(&CommunityPowerLawConfig {
        num_vertices: 6_000,
        avg_degree: 10.0,
        num_communities: 50,
        mixing: 0.1,
        ..Default::default()
    });
    let count_at = |gamma: f64| {
        let mut p = Llp::new(g.num_vertices(), gamma);
        GpuEngine::titan_v()
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        glp_suite::core::community::num_communities(p.labels())
    };
    let coarse = count_at(0.0);
    let fine = count_at(4.0);
    assert!(
        fine > 2 * coarse,
        "higher gamma should fragment: γ=0 gives {coarse}, γ=4 gives {fine}"
    );
}

#[test]
fn slp_detects_overlapping_membership() {
    // Two 8-cliques sharing a 2-vertex bridge region: the bridge endpoints
    // hear both communities' labels round after round, so their SLPA
    // memories should retain labels from both sides.
    let g = two_cliques_bridge(8);
    let bridge = [7u32, 8u32];
    let mut found_overlap = false;
    for seed in [1u64, 2, 3, 4, 5] {
        let mut prog = Slp::with_params(g.num_vertices(), 5, 0.05, 40, seed);
        GpuEngine::titan_v()
            .run(&g, &mut prog, &RunOptions::default())
            .unwrap();
        if bridge
            .iter()
            .any(|&v| prog.overlapping_labels(v).len() >= 2)
        {
            found_overlap = true;
            break;
        }
    }
    assert!(
        found_overlap,
        "bridge vertices should accumulate labels from both cliques"
    );
}

#[test]
fn capacity_lp_balances_where_classic_collapses() {
    let (g, _) = community_powerlaw_with_truth(&CommunityPowerLawConfig {
        num_vertices: 4_000,
        avg_degree: 12.0,
        num_communities: 8,
        mixing: 0.05,
        ..Default::default()
    });
    let mut classic = ClassicLp::new(g.num_vertices());
    GpuEngine::titan_v()
        .run(&g, &mut classic, &RunOptions::default())
        .unwrap();
    let classic_max = community_sizes(classic.labels())[0];

    let cap = 256;
    let mut balanced = CapacityLp::new(g.num_vertices(), cap);
    GpuEngine::titan_v()
        .run(&g, &mut balanced, &RunOptions::default())
        .unwrap();
    assert!(balanced.max_volume() <= cap);
    assert!(
        (balanced.max_volume() as usize) < classic_max,
        "cap {cap} should beat classic's largest community {classic_max}"
    );
}

#[test]
fn risk_weighting_reassigns_contested_territory() {
    // A 3x3 grid of vertices between two seeds; risk decides the border.
    let n = 11;
    let mut b = GraphBuilder::new(n);
    // seed A = 0, seed B = 10; a path 0-1-2-...-10 between them.
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.symmetrize(true);
    let g = b.build();

    let run = |risk_a: f32, risk_b: f32| -> usize {
        let mut p = RiskWeightedLp::new(n, &[(0, risk_a), (10, risk_b)], 30);
        GpuEngine::titan_v()
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        p.labels().iter().filter(|&&l| l == 0).count()
    };
    let balanced = run(1.0, 1.0);
    let a_heavy = run(10.0, 1.0);
    assert!(
        a_heavy >= balanced,
        "raising A's risk must not shrink A's territory ({a_heavy} vs {balanced})"
    );
    assert!(a_heavy > n / 2, "high-risk seed should claim the majority");
}

#[test]
fn llp_ordering_localizes_neighbors() {
    let (g, _) = community_powerlaw_with_truth(&CommunityPowerLawConfig {
        num_vertices: 5_000,
        avg_degree: 10.0,
        num_communities: 50,
        mixing: 0.05,
        ..Default::default()
    });
    let order = llp_ordering(&g, &[1.0, 8.0], 10);
    let identity: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    // The generator shuffles community membership over ids, so identity
    // order scatters neighbors; LLP must do strictly better.
    assert!(avg_log_gap(&g, &order) < avg_log_gap(&g, &identity));
}

#[test]
fn iteration_time_trace_is_consistent_and_decays() {
    // Cliques settle fast while the attached path keeps a small frontier
    // alive: per-iteration modeled time must never rise after settling,
    // and the trace must tile the run.
    let cliques = 5_000usize;
    let k = 8usize;
    let path_len = 1_000usize;
    let n = cliques * k + path_len;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = c * k;
        for a in 0..k {
            for z in (a + 1)..k {
                b.add_edge((base + a) as VertexId, (base + z) as VertexId);
            }
        }
    }
    for i in 0..path_len {
        let v = (cliques * k + i) as VertexId;
        b.add_edge(v - 1, v);
    }
    b.symmetrize(true);
    let g = b.build();

    let mut prog = ClassicLp::with_max_iterations(n, 30);
    let report = GpuEngine::titan_v()
        .run(&g, &mut prog, &RunOptions::default())
        .unwrap();
    assert_eq!(report.iteration_seconds.len(), report.iterations as usize);
    let sum: f64 = report.iteration_seconds.iter().sum();
    assert!(
        sum <= report.modeled_seconds + 1e-12,
        "trace ({sum}) cannot exceed the total ({})",
        report.modeled_seconds
    );
    let first = report.iteration_seconds[0];
    let last = *report.iteration_seconds.last().unwrap();
    assert!(
        last < first,
        "settled iterations must be cheaper than the first: {first} -> {last}"
    );
    assert!(report.iteration_seconds.iter().all(|&s| s > 0.0));
}
