//! Golden-trace regression suite.
//!
//! Pins the *structure* of an exported trace — span names, categories,
//! nesting, and kernel launch counts, with durations deliberately
//! excluded ([`Trace::structure`](glp_suite::trace::Trace::structure)) —
//! for a tiny pinned run, and checks that structure is byte-stable across
//! scheduling knobs that must not change what work happens: kernel shard
//! counts (1/2/4) and, for programs without sparse activation, Dense vs
//! Auto frontier modes. Direction-optimized execution gets its own
//! goldens: forced Push and Pull modes pin the `dispatch:push` /
//! `dispatch:pull` span tags and the `frontier_update` / `pull_gather`
//! kernel choice, and a dense-then-sparse synthetic graph pins a full
//! push→pull→push Auto switch sequence. Also pins the observability
//! contract's other half: with no tracer attached, behavior is
//! byte-identical — labels, convergence traces, modeled cost, and the
//! device kernel log do not move.

use glp_suite::core::engine::GpuEngine;
use glp_suite::core::{
    ClassicLp, Direction, Engine, FrontierMode, Llp, LpProgram, LpRunReport, RunOptions,
};
use glp_suite::graph::{Graph, GraphBuilder};
use glp_suite::trace::Tracer;
use glp_test_support::{tiny_graph, ITERS};

/// The pinned structure of `ClassicLp` on [`tiny_graph`] under the Auto
/// frontier: three iterations to converge, one warp-packed bucket, the
/// frontier maintenance kernels live because classic LP has sparse
/// activation. Auto charges `frontier_density` for its per-iteration
/// decision, picks pull while the frontier is dense (iterations 0–1) and
/// push for the converged tail, and tags each dispatch with the
/// direction that built the frontier it consumes. Regenerate
/// (deliberately!) by printing `trace.structure()` if the kernel
/// schedule changes.
const GOLDEN_CLASSIC_AUTO: &str = "\
run:GLP
  transfer:upload
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_density
    kernel:pull_gather
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch:pull
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_density
    kernel:pull_gather
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch:pull
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_density
    kernel:frontier_update
    kernel:frontier_compact
  transfer:download
";

/// Forced-push structure on the same run: no `frontier_density` (there
/// is no decision to price), `frontier_update` every iteration, and
/// `dispatch:push` tags from iteration 1 on (iteration 0 consumes the
/// mode-independent initial frontier, so its dispatch stays untagged).
const GOLDEN_CLASSIC_PUSH: &str = "\
run:GLP
  transfer:upload
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_update
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch:push
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_update
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch:push
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_update
    kernel:frontier_compact
  transfer:download
";

/// Forced-pull mirror of [`GOLDEN_CLASSIC_PUSH`]: `pull_gather` every
/// iteration and `dispatch:pull` tags from iteration 1 on.
const GOLDEN_CLASSIC_PULL: &str = "\
run:GLP
  transfer:upload
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:pull_gather
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch:pull
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:pull_gather
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch:pull
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:pull_gather
    kernel:frontier_compact
  transfer:download
";

/// The pinned structure of LLP on the same graph: identical shape minus
/// the frontier kernels (LLP's global volumes force the dense fallback,
/// so no frontier is maintained).
const GOLDEN_LLP: &str = "\
run:GLP
  transfer:upload
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
  transfer:download
";

fn classic(g: &Graph) -> Box<dyn LpProgram> {
    Box::new(ClassicLp::with_max_iterations(g.num_vertices(), ITERS))
}

fn llp(g: &Graph) -> Box<dyn LpProgram> {
    Box::new(Llp::with_max_iterations(g.num_vertices(), 2.0, ITERS))
}

/// Runs `prog` traced on the single-GPU engine and returns the
/// durations-free structural export plus the run report, after checking
/// well-formedness.
fn traced_run(
    g: &Graph,
    mut prog: Box<dyn LpProgram>,
    shards: usize,
    frontier: FrontierMode,
) -> (String, LpRunReport) {
    let tracer = Tracer::new();
    let opts = RunOptions::default()
        .with_max_iterations(ITERS)
        .with_shards(shards)
        .with_frontier(frontier)
        .with_tracer(tracer.clone());
    let report = GpuEngine::titan_v()
        .run(g, prog.as_mut(), &opts)
        .expect("pinned run succeeds");
    let trace = tracer.finish();
    trace.check_well_formed(1e-9).expect("trace is well-formed");
    assert_eq!(trace.dropped, 0, "tiny run must not hit the sink bound");
    (trace.structure(), report)
}

fn traced_structure(
    g: &Graph,
    prog: Box<dyn LpProgram>,
    shards: usize,
    frontier: FrontierMode,
) -> String {
    traced_run(g, prog, shards, frontier).0
}

/// A dense-then-sparse graph built so Auto provably switches direction
/// mid-run. A change wave starts at one loose vertex and walks a chain
/// of vertex *pairs* toward a 16-clique "blob"; every vertex except the
/// wave seed carries a self-loop, so its own label scores 1 and — since
/// score ties keep the current label — the vertex only flips when two
/// in-neighbors *agree* on a label (strict 2 > 1 majority). Each chain
/// step flips exactly 2 low-degree vertices (tiny touched volume →
/// push), the blob flips all 16 high-degree members at once (touched ≈
/// k² ≫ |E|/9 → pull), and an exit chain off the blob resumes 2-vertex
/// waves (push again). A disconnected self-frozen ballast clique
/// inflates |E| so the chain steps sit clearly on the push side of the
/// crossover.
fn switch_graph() -> Graph {
    let mut b = GraphBuilder::new(38);
    // Wave seed: 0 (self-frozen) — 1 (free). Vertex 1 adopts label 0 at
    // iteration 0; nothing else moves.
    b.add_edge(0, 1);
    // Chain pairs {2,3} and the fuse pair {4,5}: each pair sees both
    // members of the previous stage, so it flips one iteration later.
    for p in [2u32, 3] {
        b.add_edge(0, p);
        b.add_edge(1, p);
    }
    for (f, p) in [(4u32, 2u32), (4, 3), (5, 2), (5, 3)] {
        b.add_edge(p, f);
    }
    // The blob: a 16-clique (vertices 6..=21), every member adjacent to
    // both fuse vertices.
    for v in 6u32..=21 {
        for u in (v + 1)..=21 {
            b.add_edge(v, u);
        }
        b.add_edge(4, v);
        b.add_edge(5, v);
    }
    // Exit chain: pair {22,23} hangs off blob members 6 and 7, pair
    // {24,25} off the first exit pair.
    for e in [22u32, 23] {
        b.add_edge(6, e);
        b.add_edge(7, e);
    }
    for (a, e) in [(22u32, 24u32), (22, 25), (23, 24), (23, 25)] {
        b.add_edge(a, e);
    }
    // Ballast: a frozen 6-clique (26..=31) plus spare frozen singletons
    // (32..=37) that only add |E| and n — they never change.
    for v in 26u32..=31 {
        for u in (v + 1)..=31 {
            b.add_edge(v, u);
        }
    }
    // Self-loops freeze every vertex except the seed's neighbor: with
    // the vertex's own label in the tally, a lone dissenting neighbor
    // only ties — and ties keep the current label — so flipping takes an
    // agreeing *pair* of in-neighbors.
    for v in (0u32..=37).filter(|&v| v != 1) {
        b.add_edge(v, v);
    }
    b.keep_self_loops(true);
    b.symmetrize(true);
    b.build()
}

/// The pinned Auto direction sequence on [`switch_graph`]: three
/// 2-vertex push waves walking the chain, one pull iteration when the
/// 16-clique flips en masse, then push again for the exit chain and the
/// converged tail.
const SWITCH_DIRECTIONS: [Direction; 7] = [
    Direction::Push,
    Direction::Push,
    Direction::Push,
    Direction::Pull,
    Direction::Push,
    Direction::Push,
    Direction::Push,
];

/// The embedded goldens hold for the pinned tiny run. A diff here means
/// the engine's kernel schedule (or span instrumentation) changed shape —
/// regenerate the constants only if that was intentional.
#[test]
fn tiny_run_structure_matches_embedded_golden() {
    let g = tiny_graph();
    assert_eq!(
        traced_structure(&g, classic(&g), 1, FrontierMode::Auto),
        GOLDEN_CLASSIC_AUTO,
        "classic/auto structure drifted from the golden"
    );
    assert_eq!(
        traced_structure(&g, llp(&g), 1, FrontierMode::Auto),
        GOLDEN_LLP,
        "llp structure drifted from the golden"
    );
}

/// Forced Push and Pull modes pin the direction-tagged structure: the
/// frontier kernel matches the mode, no decision kernel is charged, and
/// dispatch spans are tagged with the direction that built the frontier
/// they consume.
#[test]
fn forced_direction_structures_match_embedded_goldens() {
    let g = tiny_graph();
    assert_eq!(
        traced_structure(&g, classic(&g), 1, FrontierMode::Push),
        GOLDEN_CLASSIC_PUSH,
        "classic/push structure drifted from the golden"
    );
    assert_eq!(
        traced_structure(&g, classic(&g), 1, FrontierMode::Pull),
        GOLDEN_CLASSIC_PULL,
        "classic/pull structure drifted from the golden"
    );
}

/// Shard count is intra-launch parallelism only: one kernel span per
/// launch regardless, so the exported structure is byte-identical across
/// 1/2/4 shards for both a sparse-activation and a dense program, in
/// every direction mode.
#[test]
fn structure_is_byte_stable_across_shard_counts() {
    let g = tiny_graph();
    for shards in [1usize, 2, 4] {
        assert_eq!(
            traced_structure(&g, classic(&g), shards, FrontierMode::Auto),
            GOLDEN_CLASSIC_AUTO,
            "classic structure changed at {shards} shards"
        );
        assert_eq!(
            traced_structure(&g, classic(&g), shards, FrontierMode::Push),
            GOLDEN_CLASSIC_PUSH,
            "classic/push structure changed at {shards} shards"
        );
        assert_eq!(
            traced_structure(&g, classic(&g), shards, FrontierMode::Pull),
            GOLDEN_CLASSIC_PULL,
            "classic/pull structure changed at {shards} shards"
        );
        assert_eq!(
            traced_structure(&g, llp(&g), shards, FrontierMode::Auto),
            GOLDEN_LLP,
            "llp structure changed at {shards} shards"
        );
    }
}

/// The dense-then-sparse [`switch_graph`] makes Auto change direction
/// twice in one run: push for the 2-vertex chain waves, pull when the
/// 16-clique flips, push again for the exit chain. The sequence, the
/// labels, and the exported structure are pinned — and byte-stable
/// across 1/2/4 shards.
#[test]
fn auto_switches_push_pull_push_on_the_pinned_graph() {
    let g = switch_graph();
    let (reference_structure, reference) = traced_run(&g, classic(&g), 1, FrontierMode::Auto);
    assert_eq!(
        reference.direction_per_iteration, SWITCH_DIRECTIONS,
        "auto direction sequence drifted from the pinned switch"
    );
    // The switch must be observable in the trace: a pull_gather rebuild
    // in the pull iteration, a pull-tagged dispatch consuming it, and
    // push rebuilds elsewhere.
    assert_eq!(reference_structure.matches("kernel:pull_gather").count(), 1);
    assert_eq!(
        reference_structure
            .matches("dispatch:dispatch:pull")
            .count(),
        1
    );
    assert_eq!(
        reference_structure
            .matches("kernel:frontier_update")
            .count(),
        6
    );

    // Direction choice is driven by exact integer edge counts, so the
    // whole run — labels, per-iteration directions, structure — is
    // byte-stable across shard counts.
    for shards in [2usize, 4] {
        let (structure, report) = traced_run(&g, classic(&g), shards, FrontierMode::Auto);
        assert_eq!(
            report.direction_per_iteration, SWITCH_DIRECTIONS,
            "switch sequence changed at {shards} shards"
        );
        assert_eq!(
            structure, reference_structure,
            "switch structure changed at {shards} shards"
        );
    }

    // And the switch is purely a scheduling decision: dense execution of
    // the same run produces identical labels and convergence traces.
    let mut dense = ClassicLp::with_max_iterations(g.num_vertices(), ITERS);
    let dense_report = GpuEngine::titan_v()
        .run(
            &g,
            &mut dense,
            &RunOptions::default()
                .with_max_iterations(ITERS)
                .with_frontier(FrontierMode::Dense),
        )
        .expect("dense run succeeds");
    let mut auto = ClassicLp::with_max_iterations(g.num_vertices(), ITERS);
    GpuEngine::titan_v()
        .run(
            &g,
            &mut auto,
            &RunOptions::default()
                .with_max_iterations(ITERS)
                .with_frontier(FrontierMode::Auto),
        )
        .expect("auto run succeeds");
    assert_eq!(auto.labels(), dense.labels());
    assert_eq!(
        dense_report.changed_per_iteration,
        reference.changed_per_iteration
    );
}

/// For a program without sparse activation the Auto frontier silently
/// falls back to dense, so Dense and Auto must produce byte-identical
/// structure — at every shard count.
#[test]
fn dense_and_auto_structures_agree_for_non_sparse_programs() {
    let g = tiny_graph();
    assert!(
        !llp(&g).sparse_activation(),
        "golden axis requires a dense-fallback program"
    );
    for shards in [1usize, 2, 4] {
        for mode in [FrontierMode::Dense, FrontierMode::Auto] {
            assert_eq!(
                traced_structure(&g, llp(&g), shards, mode),
                GOLDEN_LLP,
                "llp structure changed under {mode:?} at {shards} shards"
            );
        }
    }
}

/// Tracing must only observe: running with no tracer attached is
/// byte-identical to a traced run — labels, both convergence traces,
/// modeled seconds, snapshot accounting, and the device's kernel log
/// (names and bit-exact charged seconds) all match.
#[test]
fn disabled_tracing_is_byte_identical() {
    let g = tiny_graph();
    let run = |tracer: Option<Tracer>| {
        let mut opts = RunOptions::default().with_max_iterations(ITERS);
        if let Some(t) = tracer {
            opts = opts.with_tracer(t);
        }
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), ITERS);
        let report = engine.run(&g, &mut prog, &opts).expect("run succeeds");
        let log: Vec<(&'static str, u64)> = engine
            .device()
            .kernel_log()
            .iter()
            .map(|r| (r.name, r.seconds.to_bits()))
            .collect();
        (prog.labels().to_vec(), report, log)
    };

    let tracer = Tracer::new();
    let (labels_t, report_t, log_t) = run(Some(tracer.clone()));
    let (labels_p, report_p, log_p) = run(None);

    assert!(
        !tracer.finish().events.is_empty(),
        "the traced run actually recorded"
    );
    assert_eq!(labels_t, labels_p, "tracing changed the labels");
    assert_eq!(
        report_t.changed_per_iteration,
        report_p.changed_per_iteration
    );
    assert_eq!(report_t.active_per_iteration, report_p.active_per_iteration);
    assert_eq!(report_t.iterations, report_p.iterations);
    assert_eq!(
        report_t.modeled_seconds.to_bits(),
        report_p.modeled_seconds.to_bits(),
        "tracing changed the modeled clock"
    );
    assert_eq!(report_t.snapshots_taken, report_p.snapshots_taken);
    assert_eq!(log_t, log_p, "tracing changed the kernel log");
    // The profile is filled from the kernel log either way.
    assert_eq!(report_t.kernel_profile.len(), report_p.kernel_profile.len());
    assert_eq!(
        report_t.kernel_profile.total_seconds().to_bits(),
        report_p.kernel_profile.total_seconds().to_bits()
    );
}
