//! Golden-trace regression suite.
//!
//! Pins the *structure* of an exported trace — span names, categories,
//! nesting, and kernel launch counts, with durations deliberately
//! excluded ([`Trace::structure`](glp_suite::trace::Trace::structure)) —
//! for a tiny pinned run, and checks that structure is byte-stable across
//! scheduling knobs that must not change what work happens: kernel shard
//! counts (1/2/4) and, for programs without sparse activation, Dense vs
//! Auto frontier modes. Also pins the observability contract's other
//! half: with no tracer attached, behavior is byte-identical — labels,
//! convergence traces, modeled cost, and the device kernel log do not
//! move.

use glp_suite::core::engine::GpuEngine;
use glp_suite::core::{ClassicLp, Engine, FrontierMode, Llp, LpProgram, RunOptions};
use glp_suite::graph::Graph;
use glp_suite::trace::Tracer;
use glp_test_support::{tiny_graph, ITERS};

/// The pinned structure of `ClassicLp` on [`tiny_graph`] under the Auto
/// frontier: three iterations to converge, one warp-packed bucket, the
/// frontier maintenance kernels live because classic LP has sparse
/// activation. Regenerate (deliberately!) by printing
/// `trace.structure()` if the kernel schedule changes.
const GOLDEN_CLASSIC_AUTO: &str = "\
run:GLP
  transfer:upload
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_update
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_update
    kernel:frontier_compact
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
    kernel:frontier_update
    kernel:frontier_compact
  transfer:download
";

/// The pinned structure of LLP on the same graph: identical shape minus
/// the frontier kernels (LLP's global volumes force the dense fallback,
/// so no frontier is maintained).
const GOLDEN_LLP: &str = "\
run:GLP
  transfer:upload
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
  iteration:iteration
    kernel:pick_label
    dispatch:dispatch
      kernel:lp_warp_packed
    kernel:update_vertex
  transfer:download
";

fn classic(g: &Graph) -> Box<dyn LpProgram> {
    Box::new(ClassicLp::with_max_iterations(g.num_vertices(), ITERS))
}

fn llp(g: &Graph) -> Box<dyn LpProgram> {
    Box::new(Llp::with_max_iterations(g.num_vertices(), 2.0, ITERS))
}

/// Runs `prog` traced on the single-GPU engine and returns the
/// durations-free structural export, after checking well-formedness.
fn traced_structure(
    g: &Graph,
    mut prog: Box<dyn LpProgram>,
    shards: usize,
    frontier: FrontierMode,
) -> String {
    let tracer = Tracer::new();
    let opts = RunOptions::default()
        .with_max_iterations(ITERS)
        .with_shards(shards)
        .with_frontier(frontier)
        .with_tracer(tracer.clone());
    GpuEngine::titan_v()
        .run(g, prog.as_mut(), &opts)
        .expect("pinned run succeeds");
    let trace = tracer.finish();
    trace.check_well_formed(1e-9).expect("trace is well-formed");
    assert_eq!(trace.dropped, 0, "tiny run must not hit the sink bound");
    trace.structure()
}

/// The embedded goldens hold for the pinned tiny run. A diff here means
/// the engine's kernel schedule (or span instrumentation) changed shape —
/// regenerate the constants only if that was intentional.
#[test]
fn tiny_run_structure_matches_embedded_golden() {
    let g = tiny_graph();
    assert_eq!(
        traced_structure(&g, classic(&g), 1, FrontierMode::Auto),
        GOLDEN_CLASSIC_AUTO,
        "classic/auto structure drifted from the golden"
    );
    assert_eq!(
        traced_structure(&g, llp(&g), 1, FrontierMode::Auto),
        GOLDEN_LLP,
        "llp structure drifted from the golden"
    );
}

/// Shard count is intra-launch parallelism only: one kernel span per
/// launch regardless, so the exported structure is byte-identical across
/// 1/2/4 shards for both a sparse-activation and a dense program.
#[test]
fn structure_is_byte_stable_across_shard_counts() {
    let g = tiny_graph();
    for shards in [1usize, 2, 4] {
        assert_eq!(
            traced_structure(&g, classic(&g), shards, FrontierMode::Auto),
            GOLDEN_CLASSIC_AUTO,
            "classic structure changed at {shards} shards"
        );
        assert_eq!(
            traced_structure(&g, llp(&g), shards, FrontierMode::Auto),
            GOLDEN_LLP,
            "llp structure changed at {shards} shards"
        );
    }
}

/// For a program without sparse activation the Auto frontier silently
/// falls back to dense, so Dense and Auto must produce byte-identical
/// structure — at every shard count.
#[test]
fn dense_and_auto_structures_agree_for_non_sparse_programs() {
    let g = tiny_graph();
    assert!(
        !llp(&g).sparse_activation(),
        "golden axis requires a dense-fallback program"
    );
    for shards in [1usize, 2, 4] {
        for mode in [FrontierMode::Dense, FrontierMode::Auto] {
            assert_eq!(
                traced_structure(&g, llp(&g), shards, mode),
                GOLDEN_LLP,
                "llp structure changed under {mode:?} at {shards} shards"
            );
        }
    }
}

/// Tracing must only observe: running with no tracer attached is
/// byte-identical to a traced run — labels, both convergence traces,
/// modeled seconds, snapshot accounting, and the device's kernel log
/// (names and bit-exact charged seconds) all match.
#[test]
fn disabled_tracing_is_byte_identical() {
    let g = tiny_graph();
    let run = |tracer: Option<Tracer>| {
        let mut opts = RunOptions::default().with_max_iterations(ITERS);
        if let Some(t) = tracer {
            opts = opts.with_tracer(t);
        }
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), ITERS);
        let report = engine.run(&g, &mut prog, &opts).expect("run succeeds");
        let log: Vec<(&'static str, u64)> = engine
            .device()
            .kernel_log()
            .iter()
            .map(|r| (r.name, r.seconds.to_bits()))
            .collect();
        (prog.labels().to_vec(), report, log)
    };

    let tracer = Tracer::new();
    let (labels_t, report_t, log_t) = run(Some(tracer.clone()));
    let (labels_p, report_p, log_p) = run(None);

    assert!(
        !tracer.finish().events.is_empty(),
        "the traced run actually recorded"
    );
    assert_eq!(labels_t, labels_p, "tracing changed the labels");
    assert_eq!(
        report_t.changed_per_iteration,
        report_p.changed_per_iteration
    );
    assert_eq!(report_t.active_per_iteration, report_p.active_per_iteration);
    assert_eq!(report_t.iterations, report_p.iterations);
    assert_eq!(
        report_t.modeled_seconds.to_bits(),
        report_p.modeled_seconds.to_bits(),
        "tracing changed the modeled clock"
    );
    assert_eq!(report_t.snapshots_taken, report_p.snapshots_taken);
    assert_eq!(log_t, log_p, "tracing changed the kernel log");
    // The profile is filled from the kernel log either way.
    assert_eq!(report_t.kernel_profile.len(), report_p.kernel_profile.len());
    assert_eq!(
        report_t.kernel_profile.total_seconds().to_bits(),
        report_p.kernel_profile.total_seconds().to_bits()
    );
}
