//! End-to-end fraud-pipeline quality and performance-shape checks
//! (the claims of §1 and §5.4 at integration level).

use glp_suite::core::engine::GpuEngine;
use glp_suite::core::RunOptions;
use glp_suite::fraud::{FraudPipeline, InHouseLp, PipelineConfig, TxConfig, TxStream};

fn stream() -> TxStream {
    TxStream::generate(&TxConfig {
        num_users: 5_000,
        num_items: 2_000,
        days: 40,
        tx_per_day: 2_500,
        num_rings: 6,
        ring_size: 18,
        ring_tx_per_day: 45,
        blacklist_fraction: 0.2,
        ..Default::default()
    })
}

#[test]
fn pipeline_detects_rings_with_high_quality() {
    let report = FraudPipeline::new(PipelineConfig::default())
        .run(&stream(), &mut GpuEngine::titan_v(), &RunOptions::default())
        .unwrap();
    assert!(report.precision > 0.8, "precision {}", report.precision);
    assert!(report.recall > 0.8, "recall {}", report.recall);
    assert!(
        report.flagged.len() >= 4,
        "flagged {}",
        report.flagged.len()
    );
}

#[test]
fn detection_is_engine_independent() {
    let s = stream();
    let pipe = FraudPipeline::new(PipelineConfig::default());
    let a = pipe
        .run(&s, &mut GpuEngine::titan_v(), &RunOptions::default())
        .unwrap();
    let b = pipe
        .run(&s, &mut InHouseLp::taobao(), &RunOptions::default())
        .unwrap();
    let users = |r: &glp_suite::fraud::PipelineReport| -> Vec<Vec<u32>> {
        r.flagged.iter().map(|c| c.users.clone()).collect()
    };
    assert_eq!(users(&a), users(&b), "flagged clusters differ by engine");
    assert_eq!(a.precision, b.precision);
}

#[test]
fn lp_dominates_with_inhouse_but_not_with_glp() {
    // The paper's motivation: LP is 75% of the pipeline with the legacy
    // solution; GLP collapses that share.
    let s = stream();
    let pipe = FraudPipeline::new(PipelineConfig::default());
    let legacy = pipe
        .run(
            &s,
            &mut InHouseLp::taobao_scaled(1_000.0),
            &RunOptions::default(),
        )
        .unwrap();
    let glp = pipe
        .run(&s, &mut GpuEngine::titan_v(), &RunOptions::default())
        .unwrap();
    assert!(
        legacy.stages.lp_fraction() > 0.6,
        "legacy LP share {}",
        legacy.stages.lp_fraction()
    );
    assert!(
        glp.stages.lp_fraction() < legacy.stages.lp_fraction(),
        "GLP share {} !< legacy share {}",
        glp.stages.lp_fraction(),
        legacy.stages.lp_fraction()
    );
    assert!(
        legacy.stages.lp > 2.0 * glp.stages.lp,
        "GLP should cut LP time substantially: {} vs {}",
        legacy.stages.lp,
        glp.stages.lp
    );
}

#[test]
fn flagged_clusters_are_rings_not_giants() {
    let s = stream();
    let report = FraudPipeline::new(PipelineConfig::default())
        .run(&s, &mut GpuEngine::titan_v(), &RunOptions::default())
        .unwrap();
    for c in &report.flagged {
        assert!(
            c.users.len() <= 3 * 18,
            "flagged cluster of {} users looks like a flooded component",
            c.users.len()
        );
        assert!(c.score >= 0.5 && c.score <= 1.0);
    }
}
