//! Cross-engine equivalence: every execution engine in the workspace must
//! produce bit-identical labels for the same program on the same graph —
//! the property that makes the benchmark comparisons meaningful.

use glp_suite::baselines::{CpuLp, CpuLpConfig, GHashLp, GSortLp};
use glp_suite::core::engine::{GpuEngine, HybridEngine, MflStrategy, MultiGpuEngine};
use glp_suite::core::{ClassicLp, Engine, Llp, LpProgram, RunOptions, SeededLp, Slp};
use glp_suite::fraud::InHouseLp;
use glp_suite::gpusim::{Device, DeviceConfig};
use glp_suite::graph::datasets::by_name;
use glp_suite::graph::gen::{caveman, community_powerlaw, CommunityPowerLawConfig};
use glp_suite::graph::Graph;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("caveman", caveman(9, 7)),
        (
            "powerlaw",
            community_powerlaw(&CommunityPowerLawConfig {
                num_vertices: 2_500,
                avg_degree: 11.0,
                ..Default::default()
            }),
        ),
        ("dblp_small", by_name("dblp").unwrap().generate_scaled(64)),
    ]
}

/// Runs `proto` through every engine and asserts identical labels.
fn assert_all_engines_agree<P: LpProgram + Clone>(name: &str, g: &Graph, proto: &P) {
    let opts = RunOptions::default();
    let reference = {
        let mut p = proto.clone();
        GpuEngine::titan_v().run(g, &mut p, &opts).unwrap();
        p.labels().to_vec()
    };
    let check = |engine_name: &str, labels: &[u32]| {
        assert_eq!(
            labels,
            &reference[..],
            "{engine_name} disagrees with GLP on {name}"
        );
    };

    for strategy in [MflStrategy::Global, MflStrategy::Smem] {
        let mut p = proto.clone();
        GpuEngine::titan_v()
            .run(g, &mut p, &opts.clone().with_strategy(strategy))
            .unwrap();
        check(&format!("GpuEngine({strategy:?})"), p.labels());
    }
    {
        // A device too small for the graph: streaming path.
        let mem = (g.num_vertices() as u64) * 20 + g.size_bytes() / 3;
        let mut p = proto.clone();
        HybridEngine::new(Device::new(DeviceConfig::tiny(mem)))
            .run(g, &mut p, &opts)
            .unwrap();
        check("HybridEngine(streamed)", p.labels());
    }
    for devices in [2, 3] {
        let mut p = proto.clone();
        MultiGpuEngine::titan_v(devices)
            .run(g, &mut p, &opts)
            .unwrap();
        check(&format!("MultiGpuEngine({devices})"), p.labels());
    }
    {
        let mut p = proto.clone();
        CpuLp::omp(CpuLpConfig::default())
            .run(g, &mut p, &opts)
            .unwrap();
        check("OMP", p.labels());
    }
    {
        let mut p = proto.clone();
        CpuLp::ligra(CpuLpConfig::default())
            .run(g, &mut p, &opts)
            .unwrap();
        check("Ligra", p.labels());
    }
    {
        let mut p = proto.clone();
        GSortLp::titan_v().run(g, &mut p, &opts).unwrap();
        check("G-Sort", p.labels());
    }
    {
        let mut p = proto.clone();
        GHashLp::titan_v().run(g, &mut p, &opts).unwrap();
        check("G-Hash", p.labels());
    }
    {
        let mut p = proto.clone();
        InHouseLp::taobao().run(g, &mut p, &opts).unwrap();
        check("InHouse", p.labels());
    }
}

#[test]
fn classic_lp_agrees_everywhere() {
    for (name, g) in graphs() {
        let proto = ClassicLp::with_max_iterations(g.num_vertices(), 15);
        assert_all_engines_agree(name, &g, &proto);
    }
}

#[test]
fn llp_agrees_everywhere() {
    for (name, g) in graphs() {
        for gamma in [1.0, 16.0] {
            let proto = Llp::with_max_iterations(g.num_vertices(), gamma, 10);
            assert_all_engines_agree(name, &g, &proto);
        }
    }
}

#[test]
fn slp_agrees_everywhere() {
    for (name, g) in graphs() {
        let proto = Slp::with_params(g.num_vertices(), 5, 0.2, 10, 0x5EED);
        assert_all_engines_agree(name, &g, &proto);
    }
}

#[test]
fn seeded_lp_agrees_everywhere() {
    for (name, g) in graphs() {
        let seeds: Vec<u32> = (0..g.num_vertices() as u32).step_by(97).collect();
        let proto = SeededLp::with_max_iterations(g.num_vertices(), &seeds, 10);
        assert_all_engines_agree(name, &g, &proto);
    }
}

#[test]
fn tigergraph_agrees_on_classic() {
    for (name, g) in graphs() {
        let mut reference = ClassicLp::with_max_iterations(g.num_vertices(), 15);
        GpuEngine::titan_v()
            .run(&g, &mut reference, &RunOptions::default())
            .unwrap();
        let mut p = ClassicLp::with_max_iterations(g.num_vertices(), 15);
        CpuLp::tigergraph(CpuLpConfig::default())
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        assert_eq!(p.labels(), reference.labels(), "TG disagrees on {name}");
    }
}
