//! Push≡pull≡auto≡dense bit-identity, pinned across every program
//! variant and every GLP engine.
//!
//! Direction-optimized execution ([`FrontierMode::Push`],
//! [`FrontierMode::Pull`], and the per-iteration [`FrontierMode::Auto`]
//! chooser) is a pure scheduling knob: push scatters from changed
//! vertices over out-edges, pull has undecided vertices gather a
//! changed flag from in-neighbors, and `v ∈ out(u) ⟺ u ∈ in(v)` means
//! both rebuild the *same* frontier. This suite pins that argument as
//! bits: labels, the `changed` trace, the `active` trace, and the
//! iteration count must be byte-identical to dense execution for all 7
//! LP variants on all 4 engine tiers, on both pool graphs — and on a
//! property sweep of random graphs. Sparse-activation programs
//! (classic, seeded, weighted, risk) exercise the real push/pull
//! machinery; globally-coupled programs (LLP, SLP, capacity) pin the
//! silent dense fallback in every mode.
//!
//! Graph, engine, and program builders live in `glp-test-support` so
//! this suite, `frontier_equivalence.rs`, and the golden-trace suite
//! sweep the same fixture pool.

use glp_suite::core::{Direction, FrontierMode, LpRunReport, RunOptions};
use glp_suite::graph::gen::{caveman, community_powerlaw, CommunityPowerLawConfig};
use glp_suite::graph::Graph;
use glp_test_support::{engines, graphs, variants, ITERS};
use proptest::prelude::*;

const MODES: [FrontierMode; 4] = [
    FrontierMode::Dense,
    FrontierMode::Push,
    FrontierMode::Pull,
    FrontierMode::Auto,
];

/// Runs one (engine, variant) pair in `mode` on fresh instances and
/// returns `(labels, report)`.
fn run_mode(g: &Graph, ename: &str, vname: &str, mode: FrontierMode) -> (Vec<u32>, LpRunReport) {
    let opts = RunOptions::default()
        .with_max_iterations(ITERS)
        .with_frontier(mode);
    let mut engine = engines(g)
        .into_iter()
        .find(|(e, _)| *e == ename)
        .expect("engine in pool")
        .1;
    let mut prog = variants(g)
        .into_iter()
        .find(|(v, _)| *v == vname)
        .expect("variant in pool")
        .1;
    let report = engine.run(g, prog.as_mut(), &opts).expect("run succeeds");
    (prog.labels().to_vec(), report)
}

/// Asserts the direction record is consistent with the requested mode:
/// a forced mode may only ever record that direction (or Dense, for the
/// globally-coupled fallback); Dense records only Dense. Auto is free
/// to mix Push and Pull but never Dense for a sparse program.
fn check_direction_record(report: &LpRunReport, mode: FrontierMode, ctx: &str) {
    let dirs = &report.direction_per_iteration;
    assert_eq!(
        dirs.len(),
        report.iterations as usize,
        "{ctx}: one direction per iteration"
    );
    let banned: &[Direction] = match mode {
        FrontierMode::Dense => &[Direction::Push, Direction::Pull],
        FrontierMode::Push => &[Direction::Pull],
        FrontierMode::Pull => &[Direction::Push],
        FrontierMode::Auto => &[],
    };
    for b in banned {
        assert!(
            !dirs.contains(b),
            "{ctx}: {mode:?} recorded forbidden {b:?} in {dirs:?}"
        );
    }
}

#[test]
fn every_direction_is_bit_identical_to_dense_for_every_variant_and_engine() {
    for (gname, g) in graphs() {
        for (ename, _) in engines(&g) {
            for (vname, _) in variants(&g) {
                let (dense_labels, dense_report) = run_mode(&g, ename, vname, FrontierMode::Dense);
                // Active counts are direction-invariant but not
                // *density*-invariant (dense runs process every vertex
                // every iteration), so the sparse trio is compared
                // against push, not dense.
                let mut push_active: Option<Vec<u64>> = None;
                for mode in [FrontierMode::Push, FrontierMode::Pull, FrontierMode::Auto] {
                    let ctx = format!("{vname} on {ename}/{gname} under {mode:?}");
                    let (labels, report) = run_mode(&g, ename, vname, mode);
                    assert_eq!(labels, dense_labels, "{ctx}: labels diverge from dense");
                    assert_eq!(
                        report.changed_per_iteration, dense_report.changed_per_iteration,
                        "{ctx}: changed trace diverges from dense"
                    );
                    assert_eq!(report.iterations, dense_report.iterations, "{ctx}");
                    match &push_active {
                        None => push_active = Some(report.active_per_iteration.clone()),
                        Some(want) => assert_eq!(
                            &report.active_per_iteration, want,
                            "{ctx}: active trace diverges from push"
                        ),
                    }
                    check_direction_record(&report, mode, &ctx);
                }
                check_direction_record(&dense_report, FrontierMode::Dense, vname);
            }
        }
    }
}

/// Forced pull must actually take the gather path where the machinery
/// engages: for a sparse-activation program the record says Pull, and
/// for a dense-fallback program it says Dense — never silently push.
#[test]
fn forced_modes_record_their_own_direction() {
    let g = caveman(10, 7);
    for (vname, sparse) in [("classic", true), ("seeded", true), ("llp", false)] {
        for (mode, dir) in [
            (FrontierMode::Push, Direction::Push),
            (FrontierMode::Pull, Direction::Pull),
        ] {
            for (ename, _) in engines(&g) {
                let (_, report) = run_mode(&g, ename, vname, mode);
                let want = if sparse { dir } else { Direction::Dense };
                assert!(
                    report.direction_per_iteration.iter().all(|&d| d == want),
                    "{vname} on {ename} under {mode:?}: recorded {:?}, want all {want:?}",
                    report.direction_per_iteration
                );
            }
        }
    }
}

/// Every mode agrees with every other mode on the *same* run — the
/// four-way cross-check (rather than only mode-vs-dense) on every
/// engine tier. Labels and `changed` agree in all four modes; `active`
/// agrees within the sparse trio (dense counts every vertex).
#[test]
fn all_four_modes_agree_pairwise() {
    let (_, g) = graphs().remove(0);
    for (ename, _) in engines(&g) {
        let runs: Vec<(Vec<u32>, LpRunReport)> = MODES
            .iter()
            .map(|&m| run_mode(&g, ename, "classic", m))
            .collect();
        for w in runs.windows(2) {
            assert_eq!(w[0].0, w[1].0, "labels disagree across modes on {ename}");
            assert_eq!(
                w[0].1.changed_per_iteration, w[1].1.changed_per_iteration,
                "changed traces disagree across modes on {ename}"
            );
        }
        // runs[1..] = Push, Pull, Auto.
        for w in runs[1..].windows(2) {
            assert_eq!(
                w[0].1.active_per_iteration, w[1].1.active_per_iteration,
                "active traces disagree across sparse modes on {ename}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property sweep: on a random graph (planted caveman or power-law,
    /// random shape and seed), a random engine tier and a random LP
    /// variant produce byte-identical labels and convergence traces in
    /// all four frontier modes.
    #[test]
    fn random_graphs_are_direction_invariant(
        powerlaw in any::<bool>(),
        cliques in 3usize..8,
        size in 4usize..10,
        seed in 0u64..1_000,
        tier_sel in 0usize..4,
        variant_sel in 0usize..7,
    ) {
        let g = if powerlaw {
            community_powerlaw(&CommunityPowerLawConfig {
                num_vertices: 60 * cliques,
                avg_degree: size as f64,
                seed,
                ..Default::default()
            })
        } else {
            caveman(cliques, size)
        };
        let ename = engines(&g)[tier_sel].0;
        let vname = variants(&g)[variant_sel].0;
        let (dense_labels, dense_report) = run_mode(&g, ename, vname, FrontierMode::Dense);
        let mut push_active: Option<Vec<u64>> = None;
        for mode in [FrontierMode::Push, FrontierMode::Pull, FrontierMode::Auto] {
            let (labels, report) = run_mode(&g, ename, vname, mode);
            prop_assert_eq!(
                &labels, &dense_labels,
                "{} {} on {}: {:?} labels diverge", ename, vname,
                if powerlaw { "powerlaw" } else { "caveman" }, mode
            );
            prop_assert_eq!(
                &report.changed_per_iteration,
                &dense_report.changed_per_iteration,
                "{} {}: {:?} changed trace diverges", ename, vname, mode
            );
            match &push_active {
                None => push_active = Some(report.active_per_iteration.clone()),
                Some(want) => prop_assert_eq!(
                    &report.active_per_iteration, want,
                    "{} {}: {:?} active trace diverges from push", ename, vname, mode
                ),
            }
            check_direction_record(&report, mode, vname);
        }
    }
}
