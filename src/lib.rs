//! # glp-suite — umbrella crate for the GLP reproduction
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can use one dependency. See `README.md` for the tour and
//! `DESIGN.md` for the system inventory.

pub use glp_baselines as baselines;
pub use glp_core as core;
pub use glp_fraud as fraud;
pub use glp_gpusim as gpusim;
pub use glp_graph as graph;
pub use glp_serve as serve;
pub use glp_sketch as sketch;
pub use glp_trace as trace;
